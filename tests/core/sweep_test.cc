/**
 * @file
 * Sweep-scheduler equivalence and safety tests (DESIGN.md §11).
 *
 * The scheduler is a pure host-side reorganization — shared golden
 * artifacts plus a global (cell, run) queue — so the acceptance bar is
 * the same as for the other engines: per-cell outcome counts must be
 * bit-identical to campaigns run the pre-scheduler way, at any thread
 * count; golden runs must be simulated exactly once per workload; and
 * a cancelled sweep must never cache a partially finished cell while
 * still resuming bit-identically from its journals.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/golden_store.hh"
#include "core/study.hh"
#include "util/interrupt.hh"
#include "util/log.hh"

namespace mbusim::core {
namespace {

class SweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The tests control everything through StudyConfig alone.
        for (const char* knob :
             {"MBUSIM_INJECTIONS", "MBUSIM_SEED", "MBUSIM_THREADS",
              "MBUSIM_CACHE_DIR", "MBUSIM_JOURNAL_DIR",
              "MBUSIM_WORKLOADS", "MBUSIM_SWEEP_SCHEDULER",
              "MBUSIM_DEADLINE_S", "MBUSIM_HEARTBEAT_S",
              "MBUSIM_EARLY_EXIT", "MBUSIM_DIGEST_POINTS",
              "MBUSIM_CHECKPOINTS", "MBUSIM_COHORT"}) {
            unsetenv(knob);
        }
        clearInterrupt();
    }

    void TearDown() override { clearInterrupt(); }
};

std::string
freshDir(const std::string& name)
{
    std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

size_t
fileCount(const std::string& dir)
{
    if (!std::filesystem::exists(dir))
        return 0;
    size_t n = 0;
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        ++n;
    }
    return n;
}

StudyConfig
sweepConfig(uint32_t threads)
{
    StudyConfig config;
    config.workloads = {"stringsearch", "susan_s"};
    config.injections = 5;
    config.threads = threads;
    return config;
}

TEST_F(SweepTest, SchedulerMatchesSerialPath)
{
    // Reference: each cell as its own pre-scheduler campaign — private
    // golden run, private worker pool.
    std::map<std::string, std::array<uint64_t, 6>> reference;
    {
        Study ref(sweepConfig(1));
        for (const auto* w : ref.workloadSet()) {
            for (Component component : AllComponents) {
                for (uint32_t faults = 1; faults <= 3; ++faults) {
                    CampaignConfig cc;
                    cc.component = component;
                    cc.faults = faults;
                    cc.injections = 5;
                    cc.threads = 1;
                    CampaignResult r = Campaign(*w, cc).run();
                    reference[strprintf("%s_%s_f%u", w->name.c_str(),
                                        componentShortName(component),
                                        faults)] = r.counts.counts;
                }
            }
        }
    }

    for (uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(strprintf("threads=%u", threads));
        Study study(sweepConfig(threads));
        SweepReport report = study.runSweep();
        EXPECT_EQ(report.cells, 36u);
        EXPECT_EQ(report.simulatedCells, 36u);
        EXPECT_EQ(report.cachedCells, 0u);
        EXPECT_FALSE(report.cancelled);
        for (const auto* w : study.workloadSet()) {
            for (Component component : AllComponents) {
                for (uint32_t faults = 1; faults <= 3; ++faults) {
                    const CampaignResult& r =
                        study.campaign(w->name, component, faults);
                    EXPECT_EQ(r.counts.counts,
                              reference[strprintf(
                                  "%s_%s_f%u", w->name.c_str(),
                                  componentShortName(component),
                                  faults)])
                        << w->name << " "
                        << componentShortName(component) << " f"
                        << faults;
                }
            }
        }
    }
}

TEST_F(SweepTest, GoldenSimulatedOncePerWorkload)
{
    Study study(sweepConfig(4));
    uint64_t before = goldenSimulationCount();
    SweepReport report = study.runSweep();
    // 36 cells, 2 workloads: the shared store collapses what used to be
    // 36 golden simulations into exactly 2.
    EXPECT_EQ(report.goldenSimulations, 2u);
    EXPECT_EQ(goldenSimulationCount() - before, 2u);
}

TEST_F(SweepTest, GoldenCyclesDoesNotResimulate)
{
    StudyConfig config = sweepConfig(1);
    config.workloads = {"stringsearch"};
    Study study(config);

    uint64_t before = goldenSimulationCount();
    uint64_t cycles = study.goldenCycles("stringsearch");
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(goldenSimulationCount() - before, 1u);

    // A later campaign of the same workload reuses the store entry,
    // and a later goldenCycles() is a memo hit: still one simulation.
    const CampaignResult& r =
        study.campaign("stringsearch", Component::L1D, 1);
    EXPECT_EQ(r.goldenCycles, cycles);
    EXPECT_EQ(study.goldenCycles("stringsearch"), cycles);
    EXPECT_EQ(goldenSimulationCount() - before, 1u);
}

TEST_F(SweepTest, ConcurrentStudyAccessIsRaceFree)
{
    // campaign() and goldenCycles() are documented thread-safe; hammer
    // them from four threads over the same grid so TSan (the CI tsan
    // job runs test_core) can see any unguarded access to the memo
    // maps. Duplicated work on a shared miss is allowed; torn state is
    // not.
    StudyConfig config = sweepConfig(1);
    config.workloads = {"stringsearch"};
    config.injections = 3;
    Study study(config);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&study] {
            for (Component component : AllComponents) {
                for (uint32_t faults = 1; faults <= 3; ++faults) {
                    const CampaignResult& r = study.campaign(
                        "stringsearch", component, faults);
                    EXPECT_EQ(r.completed, 3u);
                    EXPECT_EQ(study.goldenCycles("stringsearch"),
                              r.goldenCycles);
                }
            }
        });
    }
    for (auto& t : threads)
        t.join();
}

TEST_F(SweepTest, CancelledSweepCachesNoPartialCellAndResumes)
{
    std::string cache_dir = freshDir("mbusim_sweep_cache");
    std::string journal_dir = freshDir("mbusim_sweep_journal");

    StudyConfig config = sweepConfig(2);
    config.cacheDir = cache_dir;
    config.journalDir = journal_dir;
    // As if ^C arrived mid-sweep: the 13th simulation attempt raises
    // the interrupt flag. 13 is not a multiple of the 5-run cell size,
    // so at least one cell is always left partially finished.
    std::atomic<uint32_t> attempts{0};
    config.hostFaultHook = [&attempts](uint32_t, uint32_t) {
        if (attempts.fetch_add(1) + 1 == 13)
            requestInterrupt();
    };

    SweepReport report;
    {
        Study study(config);
        report = study.runSweep();
    }
    clearInterrupt();
    EXPECT_TRUE(report.cancelled);
    EXPECT_LT(report.simulatedCells, report.cells);
    // Only fully finished cells may reach the disk cache.
    EXPECT_EQ(fileCount(cache_dir), report.simulatedCells);

    // Rerun with the interrupt gone: cached cells are reused, the
    // partial cell's journal is replayed, and the final grid matches a
    // pristine uninterrupted sweep bit for bit.
    config.hostFaultHook = nullptr;
    Study resumed(config);
    SweepReport second = resumed.runSweep();
    EXPECT_FALSE(second.cancelled);
    EXPECT_EQ(second.cachedCells, report.simulatedCells);
    EXPECT_EQ(second.cachedCells + second.simulatedCells, second.cells);
    EXPECT_GT(second.runsResumed, 0u);

    Study pristine(sweepConfig(2));
    pristine.runSweep();
    for (const auto* w : pristine.workloadSet()) {
        for (Component component : AllComponents) {
            for (uint32_t faults = 1; faults <= 3; ++faults) {
                SCOPED_TRACE(strprintf(
                    "%s %s f%u", w->name.c_str(),
                    componentShortName(component), faults));
                const CampaignResult& a =
                    resumed.campaign(w->name, component, faults);
                const CampaignResult& b =
                    pristine.campaign(w->name, component, faults);
                EXPECT_EQ(a.counts.counts, b.counts.counts);
                EXPECT_EQ(a.goldenCycles, b.goldenCycles);
            }
        }
    }

    std::filesystem::remove_all(cache_dir);
    std::filesystem::remove_all(journal_dir);
}

TEST_F(SweepTest, SerialFallbackMatchesScheduler)
{
    StudyConfig config = sweepConfig(2);
    config.workloads = {"stringsearch"};
    config.sweepScheduler = false;
    Study serial(config);
    SweepReport report = serial.runSweep();
    EXPECT_EQ(report.cells, 18u);
    EXPECT_EQ(report.simulatedCells, 18u);
    EXPECT_EQ(report.goldenSimulations, 1u);

    config.sweepScheduler = true;
    Study scheduled(config);
    scheduled.runSweep();
    for (Component component : AllComponents) {
        for (uint32_t faults = 1; faults <= 3; ++faults) {
            EXPECT_EQ(serial.campaign("stringsearch", component, faults)
                          .counts.counts,
                      scheduled
                          .campaign("stringsearch", component, faults)
                          .counts.counts);
        }
    }
}

TEST_F(SweepTest, EnvKnobDisablesScheduler)
{
    StudyConfig config = sweepConfig(1);
    config.workloads = {"stringsearch"};
    setenv("MBUSIM_SWEEP_SCHEDULER", "0", 1);
    Study study(config);
    unsetenv("MBUSIM_SWEEP_SCHEDULER");
    // The escape hatch must fold into the resolved config so the
    // serial loop runs, and still produce a complete grid.
    EXPECT_FALSE(study.config().sweepScheduler);
    SweepReport report = study.runSweep();
    EXPECT_EQ(report.simulatedCells, 18u);
}

} // namespace
} // namespace mbusim::core
