/**
 * @file
 * Integration tests for campaigns and the Study sweep layer. These run
 * real (small) fault-injection campaigns on the timing model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/study.hh"

namespace mbusim::core {
namespace {

CampaignConfig
smallConfig(Component component, uint32_t faults, uint32_t injections)
{
    CampaignConfig config;
    config.component = component;
    config.faults = faults;
    config.injections = injections;
    config.threads = 1;
    return config;
}

TEST(CampaignTest, TargetMapping)
{
    EXPECT_EQ(targetFor(Component::L1D), sim::FaultTarget::L1DData);
    EXPECT_EQ(targetFor(Component::ITLB), sim::FaultTarget::ItlbBits);
    EXPECT_EQ(targetFor(Component::RegFile),
              sim::FaultTarget::RegFileBits);
}

TEST(CampaignTest, CountsSumToInjections)
{
    Campaign campaign(workloads::workloadByName("stringsearch"),
                      smallConfig(Component::RegFile, 1, 40));
    CampaignResult result = campaign.run();
    EXPECT_EQ(result.counts.total(), 40u);
    EXPECT_GT(result.goldenCycles, 0u);
}

TEST(CampaignTest, Reproducible)
{
    Campaign campaign(workloads::workloadByName("stringsearch"),
                      smallConfig(Component::RegFile, 2, 30));
    CampaignResult a = campaign.run();
    CampaignResult b = campaign.run();
    EXPECT_EQ(a.counts.counts, b.counts.counts);
}

TEST(CampaignTest, SeedChangesSample)
{
    CampaignConfig config = smallConfig(Component::RegFile, 2, 60);
    Campaign a(workloads::workloadByName("susan_c"), config);
    config.seed = 999;
    Campaign b(workloads::workloadByName("susan_c"), config);
    // Different samples (the draw positions differ), same golden run.
    CampaignResult ra = a.run(true);
    CampaignResult rb = b.run(true);
    EXPECT_EQ(ra.goldenCycles, rb.goldenCycles);
    bool any_difference = false;
    for (size_t i = 0; i < ra.runs.size(); ++i) {
        if (ra.runs[i].cycle != rb.runs[i].cycle ||
            ra.runs[i].mask.flips[0].row != rb.runs[i].mask.flips[0].row)
            any_difference = true;
    }
    EXPECT_TRUE(any_difference);
}

TEST(CampaignTest, RunRecordsKept)
{
    Campaign campaign(workloads::workloadByName("stringsearch"),
                      smallConfig(Component::L1D, 3, 25));
    CampaignResult result = campaign.run(true);
    ASSERT_EQ(result.runs.size(), 25u);
    for (const RunRecord& run : result.runs) {
        EXPECT_EQ(run.mask.cardinality(), 3u);
        EXPECT_LT(run.cycle, result.goldenCycles);
        EXPECT_GT(run.cycles, 0u);
    }
}

TEST(CampaignTest, CheckpointingDoesNotChangeOutcomes)
{
    // Checkpoint fast-forward is a pure host-side optimization: every
    // injected run must classify identically with it on and off.
    unsetenv("MBUSIM_CHECKPOINTS");
    CampaignConfig with = smallConfig(Component::L1D, 2, 40);
    with.checkpoints = 8;
    CampaignConfig without = with;
    without.checkpoints = 0;

    const auto& w = workloads::workloadByName("stringsearch");
    CampaignResult ra = Campaign(w, with).run(true);
    CampaignResult rb = Campaign(w, without).run(true);

    EXPECT_EQ(ra.counts.counts, rb.counts.counts);
    EXPECT_EQ(ra.goldenCycles, rb.goldenCycles);
    ASSERT_EQ(ra.runs.size(), rb.runs.size());
    for (size_t i = 0; i < ra.runs.size(); ++i) {
        EXPECT_EQ(ra.runs[i].cycle, rb.runs[i].cycle);
        EXPECT_EQ(ra.runs[i].outcome, rb.runs[i].outcome);
        EXPECT_EQ(ra.runs[i].cycles, rb.runs[i].cycles);
        // The optimized run never resumes past its injection cycle.
        EXPECT_LE(ra.runs[i].restoredFrom, ra.runs[i].cycle);
        EXPECT_EQ(rb.runs[i].restoredFrom, 0u);
    }
}

TEST(CampaignTest, GoldenSimulatedOnce)
{
    // goldenCycles() + run() must share one cached golden execution,
    // and repeated calls must agree.
    Campaign campaign(workloads::workloadByName("susan_c"),
                      smallConfig(Component::RegFile, 1, 10));
    uint64_t cycles = campaign.goldenCycles();
    EXPECT_EQ(campaign.goldenCycles(), cycles);
    CampaignResult result = campaign.run();
    EXPECT_EQ(result.goldenCycles, cycles);
}

TEST(CampaignTest, RegFileAvfGrowsWithCardinality)
{
    // The paper's central observation, on the smallest workload: AVF
    // must not shrink when going from 1 to 3 faults (statistically, with
    // a decent sample).
    const auto& w = workloads::workloadByName("susan_c");
    CampaignResult r1 =
        Campaign(w, smallConfig(Component::RegFile, 1, 150)).run();
    CampaignResult r3 =
        Campaign(w, smallConfig(Component::RegFile, 3, 150)).run();
    EXPECT_GE(r3.avf() + 0.02, r1.avf());
}

TEST(StudyTest, RestrictedWorkloadSet)
{
    StudyConfig config;
    config.injections = 10;
    config.threads = 1;
    config.workloads = {"stringsearch", "susan_c"};
    Study study(config);
    EXPECT_EQ(study.workloadSet().size(), 2u);
}

TEST(StudyTest, CampaignMemoized)
{
    StudyConfig config;
    config.injections = 15;
    config.threads = 1;
    config.workloads = {"stringsearch"};
    Study study(config);
    const CampaignResult& a =
        study.campaign("stringsearch", Component::RegFile, 1);
    const CampaignResult& b =
        study.campaign("stringsearch", Component::RegFile, 1);
    EXPECT_EQ(&a, &b);   // same object: no re-run
    EXPECT_EQ(a.counts.total(), 15u);
}

TEST(StudyTest, DiskCacheRoundTrip)
{
    std::string dir = testing::TempDir() + "/mbusim_study_cache";
    std::filesystem::remove_all(dir);

    StudyConfig config;
    config.injections = 12;
    config.threads = 1;
    config.workloads = {"stringsearch"};
    config.cacheDir = dir;

    OutcomeCounts first;
    {
        Study study(config);
        first = study.campaign("stringsearch", Component::DTLB, 2).counts;
    }
    // A fresh Study must load identical counts from disk.
    {
        Study study(config);
        const CampaignResult& again =
            study.campaign("stringsearch", Component::DTLB, 2);
        EXPECT_EQ(again.counts.counts, first.counts);
    }
    EXPECT_FALSE(std::filesystem::is_empty(dir));
    std::filesystem::remove_all(dir);
}

TEST(StudyTest, ComponentAvfHasThreeCardinalities)
{
    StudyConfig config;
    config.injections = 10;
    config.threads = 1;
    config.workloads = {"stringsearch"};
    Study study(config);
    ComponentAvf avf = study.componentAvf(Component::RegFile);
    EXPECT_EQ(avf.component, Component::RegFile);
    for (double value : avf.byCardinality) {
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 1.0);
    }
}

TEST(StudyTest, GoldenCyclesMatchTimingModel)
{
    StudyConfig config;
    config.injections = 5;
    config.threads = 1;
    config.workloads = {"stringsearch"};
    Study study(config);
    uint64_t cycles = study.goldenCycles("stringsearch");
    EXPECT_GT(cycles, 1000u);
    EXPECT_LT(cycles, 100000u);
}

} // namespace
} // namespace mbusim::core
