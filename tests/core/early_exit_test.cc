/**
 * @file
 * Early-termination equivalence sweep (DESIGN.md §10). The engine is a
 * pure host-side optimization built on two provably-sound exit
 * conditions, so the acceptance bar is strict: with it on and off,
 * every campaign across all six components and fault cardinalities 1-3
 * must produce identical outcome counts, and the individual runs must
 * classify identically. The sweep also asserts that the engine
 * demonstrably fires — an equivalence proof over an engine that never
 * triggers would be vacuous.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/campaign.hh"
#include "util/log.hh"

namespace mbusim::core {
namespace {

class EarlyExitTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The sweep controls both arms through CampaignConfig alone.
        unsetenv("MBUSIM_EARLY_EXIT");
        unsetenv("MBUSIM_DIGEST_POINTS");
        unsetenv("MBUSIM_CHECKPOINTS");
        unsetenv("MBUSIM_COHORT");
    }
};

CampaignConfig
sweepConfig(Component component, uint32_t faults, bool early_exit)
{
    CampaignConfig config;
    config.component = component;
    config.faults = faults;
    config.injections = 6;
    config.threads = 1;
    config.earlyExit = early_exit;
    return config;
}

TEST_F(EarlyExitTest, EquivalenceSweepAllComponentsAndCardinalities)
{
    uint64_t early_exits = 0;
    for (const char* workload : {"stringsearch", "susan_c"}) {
        const auto& w = workloads::workloadByName(workload);
        for (Component component : AllComponents) {
            for (uint32_t faults = 1; faults <= 3; ++faults) {
                SCOPED_TRACE(strprintf("%s %s f%u", workload,
                                       componentShortName(component),
                                       faults));
                CampaignResult on =
                    Campaign(w, sweepConfig(component, faults, true))
                        .run(true);
                CampaignResult off =
                    Campaign(w, sweepConfig(component, faults, false))
                        .run(true);

                EXPECT_EQ(on.counts.counts, off.counts.counts);
                EXPECT_EQ(on.goldenCycles, off.goldenCycles);
                EXPECT_EQ(off.deadFaultExits, 0u);
                EXPECT_EQ(off.convergedExits, 0u);
                EXPECT_EQ(off.cyclesSaved, 0u);

                ASSERT_EQ(on.runs.size(), off.runs.size());
                for (size_t i = 0; i < on.runs.size(); ++i) {
                    EXPECT_EQ(on.runs[i].outcome, off.runs[i].outcome);
                    EXPECT_EQ(on.runs[i].cycle, off.runs[i].cycle);
                    // An early-exited run reports golden's terminal
                    // cycle count (the soundness argument says the
                    // tail is bit-identical), so `cycles` must agree
                    // between the arms in every case.
                    EXPECT_EQ(on.runs[i].cycles, off.runs[i].cycles);
                    if (on.runs[i].exitReason != sim::EarlyExit::None) {
                        EXPECT_EQ(on.runs[i].outcome, Outcome::Masked);
                        EXPECT_EQ(on.runs[i].cycles, on.goldenCycles);
                    }
                }
                early_exits += on.deadFaultExits + on.convergedExits;
            }
        }
    }
    // The engine must actually fire somewhere in the sweep; Masked
    // outcomes dominate these campaigns, so a silent engine would
    // indicate a wiring bug rather than an unlucky sample.
    EXPECT_GT(early_exits, 0u);
}

TEST_F(EarlyExitTest, SavedCyclesAreAccounted)
{
    // L2 single-bit faults on a short workload are overwhelmingly
    // masked: the engine should fire often and report savings.
    const auto& w = workloads::workloadByName("stringsearch");
    CampaignResult result =
        Campaign(w, sweepConfig(Component::L2, 1, true)).run(true);
    uint64_t from_runs = 0;
    uint32_t dead = 0, converged = 0;
    for (const RunRecord& run : result.runs) {
        from_runs += run.cyclesSaved;
        dead += run.exitReason == sim::EarlyExit::DeadFault;
        converged += run.exitReason == sim::EarlyExit::Converged;
        if (run.exitReason == sim::EarlyExit::None) {
            EXPECT_EQ(run.cyclesSaved, 0u);
        }
    }
    EXPECT_EQ(result.cyclesSaved, from_runs);
    EXPECT_EQ(result.deadFaultExits, dead);
    EXPECT_EQ(result.convergedExits, converged);
}

TEST_F(EarlyExitTest, EnvKnobDisablesEngine)
{
    const auto& w = workloads::workloadByName("stringsearch");
    setenv("MBUSIM_EARLY_EXIT", "0", 1);
    CampaignResult result =
        Campaign(w, sweepConfig(Component::L2, 1, true)).run(true);
    unsetenv("MBUSIM_EARLY_EXIT");
    EXPECT_EQ(result.deadFaultExits, 0u);
    EXPECT_EQ(result.convergedExits, 0u);
    for (const RunRecord& run : result.runs)
        EXPECT_EQ(run.exitReason, sim::EarlyExit::None);
}

TEST_F(EarlyExitTest, ComposesWithCheckpointFastForward)
{
    // Both optimizations on at once must still match the plain run.
    const auto& w = workloads::workloadByName("susan_c");
    CampaignConfig both = sweepConfig(Component::L1D, 2, true);
    both.checkpoints = 8;
    CampaignConfig neither = sweepConfig(Component::L1D, 2, false);
    neither.checkpoints = 0;

    CampaignResult ra = Campaign(w, both).run(true);
    CampaignResult rb = Campaign(w, neither).run(true);
    EXPECT_EQ(ra.counts.counts, rb.counts.counts);
    ASSERT_EQ(ra.runs.size(), rb.runs.size());
    for (size_t i = 0; i < ra.runs.size(); ++i) {
        EXPECT_EQ(ra.runs[i].outcome, rb.runs[i].outcome);
        EXPECT_EQ(ra.runs[i].cycles, rb.runs[i].cycles);
    }
}

} // namespace
} // namespace mbusim::core
