/**
 * @file
 * Observability-layer tests (DESIGN.md §12): the JSONL run trace must
 * be deterministic and syntactically valid, the report exporters must
 * round-trip through ordinary CSV/JSON parsers, and the metrics
 * registry must account for every simulated run.
 *
 * JSON validity is checked with a small recursive-descent parser local
 * to this file — the deliverables claim "any JSON reader can consume
 * this", so the test consumes them with one written from the grammar,
 * not with the emitter's own code.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/report.hh"
#include "core/study.hh"
#include "util/interrupt.hh"
#include "util/log.hh"
#include "util/metrics.hh"
#include "workloads/workload.hh"

namespace mbusim::core {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON validator (syntax only; values are discarded).

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_;   // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;   // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                if (pos_ + 1 >= text_.size())
                    return false;
                ++pos_;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_;   // closing '"'
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
};

bool
jsonValid(const std::string& text)
{
    return JsonParser(text).valid();
}

// ---------------------------------------------------------------------
// Fixtures and helpers.

class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const char* knob :
             {"MBUSIM_INJECTIONS", "MBUSIM_SEED", "MBUSIM_THREADS",
              "MBUSIM_CACHE_DIR", "MBUSIM_JOURNAL_DIR",
              "MBUSIM_WORKLOADS", "MBUSIM_SWEEP_SCHEDULER",
              "MBUSIM_DEADLINE_S", "MBUSIM_HEARTBEAT_S",
              "MBUSIM_EARLY_EXIT", "MBUSIM_DIGEST_POINTS",
              "MBUSIM_CHECKPOINTS", "MBUSIM_COHORT"}) {
            unsetenv(knob);
        }
        clearInterrupt();
    }

    void TearDown() override { clearInterrupt(); }
};

std::string
freshDir(const std::string& name)
{
    std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Strip the fields excluded from the determinism guarantee: wall
 *  time (host-dependent), the replayed flag (journal-dependent), the
 *  cohort assignment (journal- and worker-count-dependent) and the
 *  fork cycle (lockstep- and journal-dependent — a replayed run never
 *  re-forks). */
std::string
stripVolatile(const std::string& line)
{
    static const std::regex volatileFields(
        ",\"replayed\":(true|false)|,\"wall_us\":[0-9]+"
        "|,\"cohort\":(null|\\[[0-9]+,[0-9]+\\])"
        "|,\"forked_at\":(null|[0-9]+)");
    return std::regex_replace(line, volatileFields, "");
}

CampaignConfig
tinyConfig()
{
    CampaignConfig config;
    config.component = Component::RegFile;
    config.faults = 2;
    config.injections = 4;
    config.seed = 99;
    return config;
}

CampaignResult
runTraced(const CampaignConfig& base, const std::string& tracePath)
{
    CampaignConfig config = base;
    config.trace = std::make_shared<JsonlWriter>(tracePath);
    Campaign campaign(workloads::workloadByName("stringsearch"), config);
    CampaignResult result = campaign.run();
    config.trace->close();
    return result;
}

// ---------------------------------------------------------------------
// Run trace.

TEST_F(ObservabilityTest, TraceOneValidRecordPerRun)
{
    std::string path = testing::TempDir() + "/trace_valid.jsonl";
    std::filesystem::remove(path);
    CampaignConfig config = tinyConfig();
    CampaignResult result = runTraced(config, path);

    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), config.injections);
    EXPECT_EQ(result.completed, config.injections);
    for (uint32_t i = 0; i < lines.size(); ++i) {
        EXPECT_TRUE(jsonValid(lines[i])) << lines[i];
        // finalize() emits in run-index order regardless of worker
        // interleaving.
        EXPECT_NE(lines[i].find("{\"run\":" + std::to_string(i) + ","),
                  std::string::npos) << lines[i];
        EXPECT_NE(lines[i].find("\"workload\":\"stringsearch\""),
                  std::string::npos);
        EXPECT_NE(lines[i].find("\"component\":\"regfile\""),
                  std::string::npos);
        EXPECT_NE(lines[i].find("\"faults\":2"), std::string::npos);
        EXPECT_NE(lines[i].find("\"outcome\":"), std::string::npos);
        EXPECT_NE(lines[i].find("\"wall_us\":"), std::string::npos);
    }
    std::filesystem::remove(path);
}

TEST_F(ObservabilityTest, TraceIsDeterministicAcrossRuns)
{
    std::string a = testing::TempDir() + "/trace_det_a.jsonl";
    std::string b = testing::TempDir() + "/trace_det_b.jsonl";
    std::filesystem::remove(a);
    std::filesystem::remove(b);
    CampaignConfig config = tinyConfig();
    runTraced(config, a);
    runTraced(config, b);

    std::vector<std::string> la = readLines(a), lb = readLines(b);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(stripVolatile(la[i]), stripVolatile(lb[i]));
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}

TEST_F(ObservabilityTest, ReplayedRunsKeepTraceContent)
{
    std::string dir = freshDir("obs_replay_journal");
    std::string a = testing::TempDir() + "/trace_replay_a.jsonl";
    std::string b = testing::TempDir() + "/trace_replay_b.jsonl";
    std::filesystem::remove(a);
    std::filesystem::remove(b);

    CampaignConfig config = tinyConfig();
    config.journalDir = dir;
    CampaignResult first = runTraced(config, a);
    EXPECT_EQ(first.resumed, 0u);
    // Second campaign over the same journal replays every run; the
    // trace must carry the same records, now flagged replayed.
    CampaignResult second = runTraced(config, b);
    EXPECT_EQ(second.resumed, config.injections);

    std::vector<std::string> la = readLines(a), lb = readLines(b);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(stripVolatile(la[i]), stripVolatile(lb[i]));
        EXPECT_NE(la[i].find("\"replayed\":false"), std::string::npos);
        EXPECT_NE(lb[i].find("\"replayed\":true"), std::string::npos);
    }
    std::filesystem::remove_all(dir);
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}

// ---------------------------------------------------------------------
// Metrics accounting.

TEST_F(ObservabilityTest, CampaignAccountsRunsInMetrics)
{
    uint64_t before = metrics().counter("campaign.runs_simulated").value();
    CampaignConfig config = tinyConfig();
    Campaign campaign(workloads::workloadByName("stringsearch"), config);
    CampaignResult result = campaign.run();
    uint64_t after = metrics().counter("campaign.runs_simulated").value();
    EXPECT_EQ(after - before, config.injections);
    // Every exit reason lands in exactly one counter.
    EXPECT_EQ(result.completed, config.injections);
    std::string brief = metrics().snapshot().brief("campaign.");
    EXPECT_NE(brief.find("campaign.runs_simulated="), std::string::npos);
    EXPECT_NE(brief.find("campaign.run_wall_us="), std::string::npos);
    EXPECT_TRUE(jsonValid(metrics().snapshot().toJson()));
}

// ---------------------------------------------------------------------
// Report export.

/** Parse one RFC-4180 CSV line (no embedded newlines in our data). */
std::vector<std::string>
parseCsvLine(const std::string& line)
{
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
                field += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(field);
            field.clear();
        } else {
            field += c;
        }
    }
    fields.push_back(field);
    return fields;
}

TEST_F(ObservabilityTest, CampaignReportRoundTripsThroughCsv)
{
    CampaignConfig config = tinyConfig();
    Campaign campaign(workloads::workloadByName("stringsearch"), config);
    CampaignResult result = campaign.run();

    auto rows = campaignReportRows(result, config, "stringsearch");
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{
                           "table", "node", "component", "field",
                           "value"}));
    std::string csvPath = testing::TempDir() + "/campaign_report.csv";
    writeReport(rows, campaignReportJson(result, config, "stringsearch"),
                csvPath);

    std::vector<std::string> lines = readLines(csvPath);
    ASSERT_EQ(lines.size(), rows.size());
    double avf = -1.0;
    uint64_t outcomeTotal = 0;
    for (const std::string& line : lines) {
        auto fields = parseCsvLine(line);
        ASSERT_EQ(fields.size(), 5u) << line;
        if (fields[0] == "campaign" && fields[3] == "avf")
            avf = std::strtod(fields[4].c_str(), nullptr);
        if (fields[0] == "outcomes")
            outcomeTotal += std::strtoull(fields[4].c_str(), nullptr, 10);
    }
    // The exported values round-trip: the parsed table reproduces the
    // in-memory result exactly.
    EXPECT_DOUBLE_EQ(avf, result.avf());
    EXPECT_EQ(outcomeTotal, config.injections);

    EXPECT_TRUE(jsonValid(
        campaignReportJson(result, config, "stringsearch")));
    std::filesystem::remove(csvPath);
}

TEST_F(ObservabilityTest, StudyReportRoundTripsThroughCsvAndJson)
{
    StudyConfig config;
    config.workloads = {"stringsearch"};
    config.injections = 2;
    Study study(config);
    StudyReport report = buildStudyReport(study);
    ASSERT_EQ(report.avfs.size(), AllComponents.size());

    auto rows = studyReportRows(report);
    ASSERT_GE(rows.size(), 2u);
    for (const auto& row : rows)
        ASSERT_EQ(row.size(), 5u);

    std::string csvPath = testing::TempDir() + "/study_report.csv";
    std::string json = studyReportJson(report);
    writeReport(rows, json, csvPath);
    std::vector<std::string> lines = readLines(csvPath);
    ASSERT_EQ(lines.size(), rows.size());

    // Round-trip a known value: the weighted AVF rows must reproduce
    // report.avfs exactly through CSV parse + strtod.
    size_t checked = 0;
    for (const std::string& line : lines) {
        auto fields = parseCsvLine(line);
        ASSERT_EQ(fields.size(), 5u) << line;
        if (fields[0] != "weighted_avf")
            continue;
        for (const ComponentAvf& avf : report.avfs) {
            if (fields[2] != componentShortName(avf.component))
                continue;
            for (uint32_t f = 1; f <= 3; ++f) {
                if (fields[3] == strprintf("avf_%ubit", f)) {
                    EXPECT_DOUBLE_EQ(
                        std::strtod(fields[4].c_str(), nullptr),
                        avf.forCardinality(f));
                    ++checked;
                }
            }
        }
    }
    EXPECT_EQ(checked, AllComponents.size() * 3);

    EXPECT_TRUE(jsonValid(json));
    // Table VII/VIII inputs are present for every node.
    for (TechNode node : AllTechNodes) {
        EXPECT_NE(json.find(std::string("\"node\":\"") + techName(node)),
                  std::string::npos);
    }
    EXPECT_NE(json.find("\"assessment_gap\""), std::string::npos);
    std::filesystem::remove(csvPath);
}

TEST_F(ObservabilityTest, WriteReportDispatchesOnPath)
{
    EXPECT_TRUE(reportPathIsJson("out.json"));
    EXPECT_FALSE(reportPathIsJson("out.csv"));
    EXPECT_FALSE(reportPathIsJson("json"));
    EXPECT_FALSE(reportPathIsJson("-"));

    std::string jsonPath = testing::TempDir() + "/dispatch_test.json";
    writeReport({{"table", "node", "component", "field", "value"}},
                "{\"ok\":true}", jsonPath);
    std::vector<std::string> lines = readLines(jsonPath);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "{\"ok\":true}");
    std::filesystem::remove(jsonPath);
}

} // namespace
} // namespace mbusim::core
