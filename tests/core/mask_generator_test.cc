/**
 * @file
 * Tests for the spatial multi-bit fault mask generator (paper Sec III.B).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/mask_generator.hh"

namespace mbusim::core {
namespace {

TEST(MaskGenerator, SingleFaultInsideArray)
{
    MaskGenerator gen(100, 200);
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        FaultMask mask = gen.generate(1, rng);
        ASSERT_EQ(mask.cardinality(), 1u);
        EXPECT_LT(mask.flips[0].row, 100u);
        EXPECT_LT(mask.flips[0].col, 200u);
    }
}

TEST(MaskGenerator, FlipsAreDistinct)
{
    MaskGenerator gen(50, 50);
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        FaultMask mask = gen.generate(3, rng);
        std::set<std::pair<uint32_t, uint32_t>> cells;
        for (const auto& flip : mask.flips)
            cells.insert({flip.row, flip.col});
        EXPECT_EQ(cells.size(), 3u);
    }
}

/** Property: all flips of a mask stay inside the placed 3x3 cluster. */
class MaskCardinality : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(MaskCardinality, FlipsConfinedToCluster)
{
    const uint32_t faults = GetParam();
    MaskGenerator gen(64, 512);
    Rng rng(faults * 17);
    for (int i = 0; i < 400; ++i) {
        FaultMask mask = gen.generate(faults, rng);
        EXPECT_EQ(mask.cardinality(), faults);
        EXPECT_LE(mask.clusterRow + 3, 64u + 2);  // anchor in range
        for (const auto& flip : mask.flips) {
            EXPECT_GE(flip.row, mask.clusterRow);
            EXPECT_LT(flip.row, mask.clusterRow + 3);
            EXPECT_GE(flip.col, mask.clusterCol);
            EXPECT_LT(flip.col, mask.clusterCol + 3);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, MaskCardinality,
                         ::testing::Values(1u, 2u, 3u));

TEST(MaskGenerator, SubClustersIncluded)
{
    // The paper's model includes masks that would fit smaller
    // sub-clusters: double faults landing in a 2x2 (or even 1x2) box
    // must occur.
    MaskGenerator gen(32, 32);
    Rng rng(3);
    bool saw_adjacent = false, saw_spread = false;
    for (int i = 0; i < 2000; ++i) {
        FaultMask mask = gen.generate(2, rng);
        uint32_t dr = std::max(mask.flips[0].row, mask.flips[1].row) -
                      std::min(mask.flips[0].row, mask.flips[1].row);
        uint32_t dc = std::max(mask.flips[0].col, mask.flips[1].col) -
                      std::min(mask.flips[0].col, mask.flips[1].col);
        if (dr <= 1 && dc <= 1)
            saw_adjacent = true;
        if (dr == 2 || dc == 2)
            saw_spread = true;
    }
    EXPECT_TRUE(saw_adjacent);
    EXPECT_TRUE(saw_spread);
}

TEST(MaskGenerator, ClusterPlacementCoversArray)
{
    // Anchors must reach both the first and last legal positions.
    MaskGenerator gen(10, 10);
    Rng rng(4);
    bool saw_origin = false, saw_far = false;
    for (int i = 0; i < 3000; ++i) {
        FaultMask mask = gen.generate(1, rng);
        if (mask.clusterRow == 0 && mask.clusterCol == 0)
            saw_origin = true;
        if (mask.clusterRow == 7 && mask.clusterCol == 7)
            saw_far = true;
    }
    EXPECT_TRUE(saw_origin);
    EXPECT_TRUE(saw_far);
}

TEST(MaskGenerator, PlacementRoughlyUniform)
{
    MaskGenerator gen(8, 8);   // anchors 0..5 x 0..5 -> 36 positions
    Rng rng(5);
    std::array<int, 36> hits{};
    const int n = 36000;
    for (int i = 0; i < n; ++i) {
        FaultMask mask = gen.generate(1, rng);
        ++hits[mask.clusterRow * 6 + mask.clusterCol];
    }
    for (int h : hits) {
        EXPECT_GT(h, 700);    // expect ~1000 each
        EXPECT_LT(h, 1300);
    }
}

TEST(MaskGenerator, DeterministicGivenRngState)
{
    MaskGenerator gen(128, 512);
    Rng a(77), b(77);
    for (int i = 0; i < 100; ++i) {
        FaultMask ma = gen.generate(3, a);
        FaultMask mb = gen.generate(3, b);
        ASSERT_EQ(ma.flips.size(), mb.flips.size());
        for (size_t k = 0; k < ma.flips.size(); ++k) {
            EXPECT_EQ(ma.flips[k].row, mb.flips[k].row);
            EXPECT_EQ(ma.flips[k].col, mb.flips[k].col);
        }
    }
}

TEST(MaskGenerator, CustomClusterShapes)
{
    // 1x3 (row-adjacent only) and 2x2 shapes for the ablation bench.
    MaskGenerator row_gen(16, 64, {1, 3});
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        FaultMask mask = row_gen.generate(2, rng);
        EXPECT_EQ(mask.flips[0].row, mask.flips[1].row);
    }
    MaskGenerator sq_gen(16, 64, {2, 2});
    for (int i = 0; i < 200; ++i) {
        FaultMask mask = sq_gen.generate(3, rng);
        for (const auto& flip : mask.flips) {
            EXPECT_LT(flip.row - mask.clusterRow, 2u);
            EXPECT_LT(flip.col - mask.clusterCol, 2u);
        }
    }
}

TEST(MaskGenerator, ClusterLargerThanArrayIsClamped)
{
    MaskGenerator gen(2, 2, {3, 3});
    Rng rng(7);
    FaultMask mask = gen.generate(4, rng);
    EXPECT_EQ(mask.cardinality(), 4u);   // whole 2x2 array
    for (const auto& flip : mask.flips) {
        EXPECT_LT(flip.row, 2u);
        EXPECT_LT(flip.col, 2u);
    }
}

} // namespace
} // namespace mbusim::core
