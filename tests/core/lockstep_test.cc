/**
 * @file
 * Lockstep divergence-on-demand equivalence sweep (DESIGN.md §15).
 * With lockstep on, a cohort's runs ride the shared golden cursor as
 * flip overlays and only materialize a private simulator when a flip
 * propagates; runs whose flips all die retire with zero private
 * simulation. That is a pure host-side scheduling change: against the
 * warm-cursor path (lockstep off) every campaign must produce
 * identical outcome counts and field-for-field identical RunRecords —
 * including the early-exit bookkeeping (exitReason, cyclesSaved,
 * restoredFrom) that the retire/fork shortcuts reconstruct without
 * simulating. And the sweep must demonstrably exercise both shortcut
 * paths (forks and never-forked retirements), or the proof is
 * vacuous.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/campaign.hh"
#include "util/log.hh"
#include "util/metrics.hh"

namespace mbusim::core {
namespace {

class LockstepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The sweep controls both arms through CampaignConfig alone.
        unsetenv("MBUSIM_EARLY_EXIT");
        unsetenv("MBUSIM_DIGEST_POINTS");
        unsetenv("MBUSIM_CHECKPOINTS");
        unsetenv("MBUSIM_COHORT");
        unsetenv("MBUSIM_LOCKSTEP");
        unsetenv("MBUSIM_JOURNAL_DIR");
    }
};

CampaignConfig
armConfig(Component component, uint32_t faults, bool lockstep,
          uint32_t injections = 6, uint32_t threads = 1)
{
    CampaignConfig config;
    config.component = component;
    config.faults = faults;
    config.injections = injections;
    config.threads = threads;
    config.cohortBatching = true;
    config.lockstep = lockstep;
    return config;
}

/** Field-for-field equality of the deterministic RunRecord fields
 *  (everything but wallMicros, the cohort assignment and the fork
 *  cycle, which are host-side). */
void
expectSameRuns(const CampaignResult& a, const CampaignResult& b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        SCOPED_TRACE(strprintf("run %zu", i));
        EXPECT_EQ(a.runs[i].index, b.runs[i].index);
        EXPECT_EQ(a.runs[i].cycle, b.runs[i].cycle);
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
        EXPECT_EQ(a.runs[i].cycles, b.runs[i].cycles);
        EXPECT_EQ(a.runs[i].restoredFrom, b.runs[i].restoredFrom);
        EXPECT_EQ(a.runs[i].exitReason, b.runs[i].exitReason);
        EXPECT_EQ(a.runs[i].cyclesSaved, b.runs[i].cyclesSaved);
        EXPECT_EQ(a.runs[i].mask.clusterRow, b.runs[i].mask.clusterRow);
        EXPECT_EQ(a.runs[i].mask.clusterCol, b.runs[i].mask.clusterCol);
        ASSERT_EQ(a.runs[i].mask.flips.size(),
                  b.runs[i].mask.flips.size());
        for (size_t f = 0; f < a.runs[i].mask.flips.size(); ++f) {
            EXPECT_EQ(a.runs[i].mask.flips[f].row,
                      b.runs[i].mask.flips[f].row);
            EXPECT_EQ(a.runs[i].mask.flips[f].col,
                      b.runs[i].mask.flips[f].col);
        }
    }
}

TEST_F(LockstepTest, EquivalenceSweepAcrossComponentsAndCardinalities)
{
    Counter& forks = metrics().counter("campaign.forks");
    Counter& retired = metrics().counter("campaign.never_forked");
    const uint64_t forks_before = forks.value();
    const uint64_t retired_before = retired.value();

    for (const char* workload : {"stringsearch", "susan_c"}) {
        const auto& w = workloads::workloadByName(workload);
        for (Component component :
             {Component::L1D, Component::L1I, Component::RegFile,
              Component::DTLB}) {
            for (uint32_t faults = 1; faults <= 3; ++faults) {
                SCOPED_TRACE(strprintf("%s %s f%u", workload,
                                       componentShortName(component),
                                       faults));
                CampaignResult on =
                    Campaign(w, armConfig(component, faults, true))
                        .run(true);
                CampaignResult off =
                    Campaign(w, armConfig(component, faults, false))
                        .run(true);

                EXPECT_EQ(on.counts.counts, off.counts.counts);
                EXPECT_EQ(on.goldenCycles, off.goldenCycles);
                expectSameRuns(on, off);
            }
        }
    }
    // Both shortcut paths must fire somewhere in the sweep: runs that
    // propagated and forked into private simulators, and runs that
    // retired straight from the cursor without simulating a cycle.
    EXPECT_GT(forks.value(), forks_before);
    EXPECT_GT(retired.value(), retired_before);
}

TEST_F(LockstepTest, MultiThreadedLockstepMatchesSerialPerRun)
{
    // Worker interleaving across cohorts must not leak into results:
    // a 3-worker lockstep campaign matches a serial per-run one.
    const auto& w = workloads::workloadByName("stringsearch");
    CampaignResult lockstep =
        Campaign(w, armConfig(Component::L1D, 2, true, 24, 3))
            .run(true);
    CampaignConfig serial_cfg =
        armConfig(Component::L1D, 2, false, 24, 1);
    serial_cfg.cohortBatching = false;
    CampaignResult serial = Campaign(w, serial_cfg).run(true);
    EXPECT_EQ(lockstep.counts.counts, serial.counts.counts);
    expectSameRuns(lockstep, serial);
}

TEST_F(LockstepTest, EnvKnobFallsBackToCursorRestore)
{
    // MBUSIM_LOCKSTEP=0 overrides the config default: cohorts still
    // run, but on the per-run warm-cursor path (no forks, no overlay
    // retirements), with identical records.
    const auto& w = workloads::workloadByName("stringsearch");
    Counter& forks = metrics().counter("campaign.forks");
    Counter& retired = metrics().counter("campaign.never_forked");

    setenv("MBUSIM_LOCKSTEP", "0", 1);
    const uint64_t forks_before = forks.value();
    const uint64_t retired_before = retired.value();
    CampaignResult off =
        Campaign(w, armConfig(Component::L2, 1, true)).run(true);
    unsetenv("MBUSIM_LOCKSTEP");
    EXPECT_EQ(forks.value(), forks_before);
    EXPECT_EQ(retired.value(), retired_before);

    CampaignResult on =
        Campaign(w, armConfig(Component::L2, 1, true)).run(true);
    EXPECT_EQ(on.counts.counts, off.counts.counts);
    expectSameRuns(on, off);
}

TEST_F(LockstepTest, ComposesWithEarlyExitDisabled)
{
    // Lockstep must stay bit-identical when the early-exit engine is
    // off: dead runs then retire as full golden-length executions
    // (exitReason None, zero cyclesSaved), exactly like a private
    // simulation of a machine whose flips never propagate.
    const auto& w = workloads::workloadByName("stringsearch");
    for (uint32_t faults : {1u, 3u}) {
        SCOPED_TRACE(faults);
        CampaignConfig on_cfg = armConfig(Component::L1D, faults, true);
        on_cfg.earlyExit = false;
        CampaignConfig off_cfg =
            armConfig(Component::L1D, faults, false);
        off_cfg.earlyExit = false;
        CampaignResult on = Campaign(w, on_cfg).run(true);
        CampaignResult off = Campaign(w, off_cfg).run(true);
        EXPECT_EQ(on.counts.counts, off.counts.counts);
        expectSameRuns(on, off);
        for (const RunRecord& run : on.runs) {
            EXPECT_EQ(run.exitReason, sim::EarlyExit::None);
            EXPECT_EQ(run.cyclesSaved, 0u);
        }
    }
}

} // namespace
} // namespace mbusim::core
