/**
 * @file
 * Cohort-batched execution equivalence sweep (DESIGN.md §13). The
 * cohort scheduler's warm golden cursor is a pure host-side
 * optimization: a run restored from a cursor snapshot taken at its
 * injection cycle is bit-identical to one that replays the golden
 * prefix itself. The acceptance bar mirrors early_exit_test.cc's:
 * with batching on and off, every campaign must produce identical
 * outcome counts and every RunRecord must match field for field —
 * and the cursor must demonstrably serve runs, or the proof is
 * vacuous.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/campaign.hh"
#include "util/log.hh"
#include "util/metrics.hh"

namespace mbusim::core {
namespace {

class CohortTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The sweep controls both arms through CampaignConfig alone.
        unsetenv("MBUSIM_EARLY_EXIT");
        unsetenv("MBUSIM_DIGEST_POINTS");
        unsetenv("MBUSIM_CHECKPOINTS");
        unsetenv("MBUSIM_COHORT");
        unsetenv("MBUSIM_LOCKSTEP");
        unsetenv("MBUSIM_JOURNAL_DIR");
    }
};

CampaignConfig
sweepConfig(Component component, uint32_t faults, bool cohort,
            uint32_t injections = 6, uint32_t threads = 1)
{
    CampaignConfig config;
    config.component = component;
    config.faults = faults;
    config.injections = injections;
    config.threads = threads;
    config.cohortBatching = cohort;
    return config;
}

/** Field-for-field equality of the deterministic RunRecord fields
 *  (everything but wallMicros and the cohort assignment). */
void
expectSameRuns(const CampaignResult& a, const CampaignResult& b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        SCOPED_TRACE(strprintf("run %zu", i));
        EXPECT_EQ(a.runs[i].index, b.runs[i].index);
        EXPECT_EQ(a.runs[i].cycle, b.runs[i].cycle);
        EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
        EXPECT_EQ(a.runs[i].cycles, b.runs[i].cycles);
        EXPECT_EQ(a.runs[i].restoredFrom, b.runs[i].restoredFrom);
        EXPECT_EQ(a.runs[i].exitReason, b.runs[i].exitReason);
        EXPECT_EQ(a.runs[i].cyclesSaved, b.runs[i].cyclesSaved);
        EXPECT_EQ(a.runs[i].mask.clusterRow, b.runs[i].mask.clusterRow);
        EXPECT_EQ(a.runs[i].mask.clusterCol, b.runs[i].mask.clusterCol);
        ASSERT_EQ(a.runs[i].mask.flips.size(),
                  b.runs[i].mask.flips.size());
        for (size_t f = 0; f < a.runs[i].mask.flips.size(); ++f) {
            EXPECT_EQ(a.runs[i].mask.flips[f].row,
                      b.runs[i].mask.flips[f].row);
            EXPECT_EQ(a.runs[i].mask.flips[f].col,
                      b.runs[i].mask.flips[f].col);
        }
    }
}

TEST_F(CohortTest, EquivalenceSweepAcrossComponentsAndCardinalities)
{
    const uint64_t avoided_before =
        metrics().counter("campaign.restores_avoided").value();
    uint64_t cursor_runs = 0;
    for (const char* workload : {"stringsearch", "susan_c"}) {
        const auto& w = workloads::workloadByName(workload);
        for (Component component :
             {Component::L1D, Component::L1I, Component::RegFile,
              Component::DTLB}) {
            for (uint32_t faults = 1; faults <= 3; ++faults) {
                SCOPED_TRACE(strprintf("%s %s f%u", workload,
                                       componentShortName(component),
                                       faults));
                // This sweep proves the warm-cursor restore path;
                // lockstep overlay riding (DESIGN.md §15) has its own
                // equivalence sweep in lockstep_test.cc.
                CampaignConfig batched =
                    sweepConfig(component, faults, true);
                batched.lockstep = false;
                CampaignResult on = Campaign(w, batched).run(true);
                CampaignResult off =
                    Campaign(w, sweepConfig(component, faults, false))
                        .run(true);

                EXPECT_EQ(on.counts.counts, off.counts.counts);
                EXPECT_EQ(on.goldenCycles, off.goldenCycles);
                expectSameRuns(on, off);
                for (const RunRecord& run : on.runs)
                    cursor_runs += run.cohortId >= 0;
                for (const RunRecord& run : off.runs)
                    EXPECT_EQ(run.cohortId, -1);
            }
        }
    }
    // The cursor must actually serve runs somewhere in the sweep — and
    // share its golden replay across at least some of them: an
    // equivalence proof over a scheduler that silently fell back to
    // per-run restore would be vacuous.
    EXPECT_GT(cursor_runs, 0u);
    EXPECT_GT(metrics().counter("campaign.restores_avoided").value(),
              avoided_before);
}

TEST_F(CohortTest, MultiThreadedCohortsMatchSerialPerRun)
{
    // Cohort splitting and worker interleaving must not leak into the
    // results: a 3-worker batched campaign matches a serial per-run
    // one field for field.
    const auto& w = workloads::workloadByName("stringsearch");
    CampaignResult batched =
        Campaign(w, sweepConfig(Component::L1D, 2, true, 24, 3))
            .run(true);
    CampaignResult serial =
        Campaign(w, sweepConfig(Component::L1D, 2, false, 24, 1))
            .run(true);
    EXPECT_EQ(batched.counts.counts, serial.counts.counts);
    expectSameRuns(batched, serial);
}

TEST_F(CohortTest, EnvKnobFallsBackToPerRunRestore)
{
    const auto& w = workloads::workloadByName("stringsearch");
    Counter& cohorts = metrics().counter("campaign.cohorts");

    // MBUSIM_COHORT=0 overrides the config default: no cohort is ever
    // executed and no run carries a cohort assignment.
    setenv("MBUSIM_COHORT", "0", 1);
    const uint64_t before_off = cohorts.value();
    CampaignResult off =
        Campaign(w, sweepConfig(Component::L2, 1, true)).run(true);
    unsetenv("MBUSIM_COHORT");
    EXPECT_EQ(cohorts.value() - before_off, 0u);
    for (const RunRecord& run : off.runs)
        EXPECT_EQ(run.cohortId, -1);

    // With the knob unset the config default applies again.
    const uint64_t before_on = cohorts.value();
    CampaignResult on =
        Campaign(w, sweepConfig(Component::L2, 1, true)).run(true);
    EXPECT_GT(cohorts.value() - before_on, 0u);
    EXPECT_EQ(on.counts.counts, off.counts.counts);
    expectSameRuns(on, off);
}

} // namespace
} // namespace mbusim::core
