/**
 * @file
 * Unit tests of the portable golden-artifact blob (DESIGN.md §17).
 *
 * The blob crosses host boundaries, so two properties carry all the
 * weight: serialization round-trips every field exactly (a worker
 * byte-compares its rebuilt blob against the coordinator's), and the
 * parser rejects any corrupted or adversarial blob outright — the
 * content-addressed key is only as trustworthy as the strictness of
 * what it names.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/golden_wire.hh"

namespace mbusim::core {
namespace {

GoldenWire
sampleWire()
{
    GoldenWire wire;
    wire.result.status.kind = sim::ExitKind::Exited;
    wire.result.status.exitCode = 3;
    wire.result.status.faultPc = 0x1234;
    wire.result.status.faultAddr = 0xdeadbeef;
    wire.result.output = {0x00, 0x41, 0xff, 0x0a};
    wire.result.cycles = 123456789;
    wire.result.instructions = 98765;
    wire.result.cpuStats.committed = 1;
    wire.result.cpuStats.mispredicts = 2;
    wire.result.l1dStats.hits = 10;
    wire.result.l1dStats.misses = 4;
    wire.result.l1dStats.writebacks = 2;
    wire.result.l2Stats.hits = 7;
    wire.result.itlbStats.hits = 5;
    wire.result.dtlbStats.misses = 6;
    wire.result.pageWalks = 11;
    wire.result.earlyExit = sim::EarlyExit::None;
    wire.digests = {{100, 0xabc}, {200, 0xdef}, {300, 0x123}};
    wire.checkpointCycles = {0, 1000, 2000};
    return wire;
}

TEST(GoldenWireTest, RoundTripsEveryField)
{
    const GoldenWire in = sampleWire();
    const std::string blob = serializeGoldenWire(in);

    GoldenWire out;
    ASSERT_TRUE(parseGoldenWire(blob, out));
    EXPECT_EQ(out.result.status.kind, in.result.status.kind);
    EXPECT_EQ(out.result.status.exitCode, in.result.status.exitCode);
    EXPECT_EQ(out.result.status.faultPc, in.result.status.faultPc);
    EXPECT_EQ(out.result.status.faultAddr, in.result.status.faultAddr);
    EXPECT_EQ(out.result.output, in.result.output);
    EXPECT_EQ(out.result.cycles, in.result.cycles);
    EXPECT_EQ(out.result.instructions, in.result.instructions);
    EXPECT_EQ(out.result.cpuStats.committed,
              in.result.cpuStats.committed);
    EXPECT_EQ(out.result.l1dStats.misses, in.result.l1dStats.misses);
    EXPECT_EQ(out.result.pageWalks, in.result.pageWalks);
    ASSERT_EQ(out.digests.size(), in.digests.size());
    EXPECT_EQ(out.digests[1].cycle, 200u);
    EXPECT_EQ(out.digests[1].digest, 0xdefull);
    EXPECT_EQ(out.checkpointCycles, in.checkpointCycles);

    // Determinism: re-serializing the parse reproduces the bytes —
    // the byte-compare on the worker is meaningful.
    EXPECT_EQ(serializeGoldenWire(out), blob);
}

TEST(GoldenWireTest, KeyIsStableAndSensitive)
{
    const GoldenWire wire = sampleWire();
    const std::string blob = serializeGoldenWire(wire);
    const std::string key = goldenWireKey(0x1111, blob);
    EXPECT_TRUE(validGoldenKey(key));
    EXPECT_EQ(key, goldenWireKey(0x1111, blob));

    // Different outcome digest, or any byte of the blob, moves the
    // key: version skew between hosts cannot alias.
    EXPECT_NE(key, goldenWireKey(0x2222, blob));
    GoldenWire tweaked = wire;
    tweaked.result.cycles ^= 1;
    EXPECT_NE(key,
              goldenWireKey(0x1111, serializeGoldenWire(tweaked)));
}

TEST(GoldenWireTest, ValidGoldenKeySyntax)
{
    EXPECT_TRUE(validGoldenKey("g0123456789abcdef-fedcba9876543210"));
    const char* bad[] = {
        "",
        "-",
        "g0123456789abcdef-fedcba987654321",    // short
        "g0123456789abcdef-fedcba98765432100",  // long
        "x0123456789abcdef-fedcba9876543210",   // wrong magic
        "g0123456789abcdeF-fedcba9876543210",   // uppercase hex
        "g0123456789abcdef=fedcba9876543210",   // wrong separator
        "g0123456789abcdeg-fedcba9876543210",   // non-hex
    };
    for (const char* key : bad)
        EXPECT_FALSE(validGoldenKey(key)) << key;
}

TEST(GoldenWireTest, RejectsCorruptBlobs)
{
    const std::string blob = serializeGoldenWire(sampleWire());
    GoldenWire out;

    EXPECT_FALSE(parseGoldenWire("", out));
    EXPECT_FALSE(parseGoldenWire("not-a-blob", out));
    EXPECT_FALSE(parseGoldenWire("mbusim-golden v2", out));
    // Truncations at every whitespace boundary: a torn transfer must
    // never parse.
    for (size_t pos = blob.rfind(' '); pos != std::string::npos &&
                                       pos > 20;
         pos = blob.rfind(' ', pos - 1))
        EXPECT_FALSE(parseGoldenWire(blob.substr(0, pos), out))
            << "truncated at " << pos;
    // Trailing garbage after a complete blob.
    EXPECT_FALSE(parseGoldenWire(blob + " 7", out));
    // Non-numeric damage in the middle.
    std::string mangled = blob;
    const size_t digit = mangled.find_last_of("0123456789");
    mangled[digit] = 'z';
    EXPECT_FALSE(parseGoldenWire(mangled, out));
}

TEST(GoldenWireTest, RejectsOversizedCounts)
{
    GoldenWire out;
    // A hostile digest count must be refused before any allocation,
    // not after a multi-gigabyte reserve. An empty wire's blob ends
    // "<output_len> - <digests> <checkpoints>" = "... 0 - 0 0";
    // replace the digest count with an absurd one.
    const std::string blob = serializeGoldenWire(GoldenWire{});
    ASSERT_TRUE(blob.size() > 4 &&
                blob.compare(blob.size() - 4, 4, " 0 0") == 0);
    const std::string hostile =
        blob.substr(0, blob.size() - 3) + "99999999999 0";
    EXPECT_FALSE(parseGoldenWire(hostile, out));
}

} // namespace
} // namespace mbusim::core
