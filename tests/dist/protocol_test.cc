/**
 * @file
 * Unit tests of the coordinator/worker wire protocol (DESIGN.md §14).
 *
 * The framing layer is the one piece of the distributed sweep that
 * must survive byte-level adversity: workers are SIGKILLed mid-write,
 * pipes deliver frames in arbitrary chunks, and a corrupted length
 * prefix must never turn into a multi-gigabyte allocation. These
 * tests exercise FrameBuffer against every chunking of a frame
 * stream, the corrupt-prefix latch, and writeFrame/readFrame over a
 * real pipe(2) pair — including the torn-final-frame case a dead
 * worker leaves behind.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <pthread.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "dist/protocol.hh"
#include "dist/transport.hh"
#include "util/log.hh"

namespace mbusim::dist {
namespace {

/** Encode one frame the way writeFrame does, into a byte string. */
std::string
encode(const std::string& payload)
{
    uint32_t n = static_cast<uint32_t>(payload.size());
    char prefix[4] = {static_cast<char>(n & 0xff),
                      static_cast<char>((n >> 8) & 0xff),
                      static_cast<char>((n >> 16) & 0xff),
                      static_cast<char>((n >> 24) & 0xff)};
    return std::string(prefix, 4) + payload;
}

TEST(FrameBufferTest, RoundTripsWholeFrames)
{
    FrameBuffer fb;
    std::string wire = encode("hello 42") + encode("") + encode("hb");
    fb.feed(wire.data(), wire.size());

    std::string payload;
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hello 42");
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "");
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hb");
    EXPECT_FALSE(fb.next(payload));
    EXPECT_FALSE(fb.corrupt());
}

TEST(FrameBufferTest, ReassemblesAcrossEveryChunking)
{
    // A pipe may deliver the stream split at any byte boundary,
    // including inside the length prefix. Every split point must
    // yield the same two frames.
    std::string wire = encode("rec 7 123 run 0 947 0") + encode("unit-done 7");
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameBuffer fb;
        fb.feed(wire.data(), cut);
        fb.feed(wire.data() + cut, wire.size() - cut);

        std::string payload;
        ASSERT_TRUE(fb.next(payload)) << "cut at " << cut;
        EXPECT_EQ(payload, "rec 7 123 run 0 947 0");
        ASSERT_TRUE(fb.next(payload)) << "cut at " << cut;
        EXPECT_EQ(payload, "unit-done 7");
        EXPECT_FALSE(fb.next(payload));
    }
}

TEST(FrameBufferTest, ByteAtATime)
{
    std::string wire = encode("log W something broke");
    FrameBuffer fb;
    std::string payload;
    for (size_t i = 0; i < wire.size(); ++i) {
        EXPECT_FALSE(fb.next(payload)) << "premature frame at byte " << i;
        fb.feed(wire.data() + i, 1);
    }
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "log W something broke");
}

TEST(FrameBufferTest, TornFinalFrameStaysBuffered)
{
    // A worker SIGKILLed mid-write leaves a short final frame. The
    // buffer must hold it without emitting garbage and without
    // marking the stream corrupt (the bytes are valid, just
    // incomplete).
    std::string wire = encode("hello 99") + encode("rec 1 55 run ...");
    FrameBuffer fb;
    fb.feed(wire.data(), wire.size() - 5);

    std::string payload;
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hello 99");
    EXPECT_FALSE(fb.next(payload));
    EXPECT_FALSE(fb.corrupt());
}

TEST(FrameBufferTest, OversizedPrefixPoisonsStream)
{
    // 0xFFFFFFFF as a length prefix means the stream is garbage;
    // next() must refuse it forever rather than try to buffer 4 GiB.
    FrameBuffer fb;
    std::string good = encode("hb");
    char bad[4] = {'\xff', '\xff', '\xff', '\xff'};
    fb.feed(good.data(), good.size());
    fb.feed(bad, 4);
    fb.feed(good.data(), good.size());

    std::string payload;
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hb");
    EXPECT_FALSE(fb.next(payload));
    EXPECT_TRUE(fb.corrupt());
    EXPECT_FALSE(fb.next(payload));
}

TEST(FrameBufferTest, MaxSizeFrameIsAcceptedJustOverIsNot)
{
    {
        FrameBuffer fb;
        std::string wire = encode(std::string(MaxFrameBytes, 'x'));
        fb.feed(wire.data(), wire.size());
        std::string payload;
        ASSERT_TRUE(fb.next(payload));
        EXPECT_EQ(payload.size(), MaxFrameBytes);
        EXPECT_FALSE(fb.corrupt());
    }
    {
        FrameBuffer fb;
        uint32_t n = MaxFrameBytes + 1;
        char prefix[4];
        std::memcpy(prefix, &n, 4);
        fb.feed(prefix, 4);
        std::string payload;
        EXPECT_FALSE(fb.next(payload));
        EXPECT_TRUE(fb.corrupt());
    }
}

/** RAII pipe pair for the blocking read/write tests. */
struct Pipe
{
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    void
    closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void
    closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

TEST(FrameIoTest, WriteThenReadOverPipe)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.fds[1], "work 3 stringsearch l1d 2 2 0 1"));
    ASSERT_TRUE(writeFrame(p.fds[1], "shutdown"));

    std::string payload;
    ASSERT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "work 3 stringsearch l1d 2 2 0 1");
    ASSERT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "shutdown");
}

TEST(FrameIoTest, CleanEofAtFrameBoundaryReturnsZero)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.fds[1], "hb"));
    p.closeWrite();

    std::string payload;
    ASSERT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "hb");
    EXPECT_EQ(readFrame(p.fds[0], payload), 0);
}

TEST(FrameIoTest, TornFrameAtEofIsAnError)
{
    Pipe p;
    std::string wire = encode("rec 1 55 run 0 947 0");
    ASSERT_EQ(::write(p.fds[1], wire.data(), wire.size() - 3),
              static_cast<ssize_t>(wire.size() - 3));
    p.closeWrite();

    std::string payload;
    EXPECT_EQ(readFrame(p.fds[0], payload), -1);
}

TEST(FrameIoTest, WriteToClosedPipeFailsWithoutSignal)
{
    // The worker ignores SIGPIPE and relies on writeFrame returning
    // false once the coordinator is gone.
    ::signal(SIGPIPE, SIG_IGN);
    Pipe p;
    p.closeRead();
    EXPECT_FALSE(writeFrame(p.fds[1], "hb"));
}

// ---------------------------------------------------------------------
// EINTR semantics. A worker blocked between frames must pop out of
// readFrame when a termination signal lands (so SIGTERM works), but a
// signal landing mid-frame — the heartbeat thread exiting, a SIGCHLD,
// a profiler tick — must not tear the frame.

namespace {

void
noopHandler(int)
{
}

/** Install @p sig with a no-op handler and no SA_RESTART, so blocked
 *  reads really do return EINTR. */
void
installInterrupting(int sig)
{
    struct sigaction sa = {};
    sa.sa_handler = noopHandler;
    sa.sa_flags = 0;   // no SA_RESTART on purpose
    ::sigaction(sig, &sa, nullptr);
}

} // namespace

TEST(FrameIoTest, SignalMidFrameIsAbsorbed)
{
    installInterrupting(SIGUSR1);
    Pipe p;
    const std::string wire = encode("rec 3 99 run 5 947 0");

    pthread_t reader = ::pthread_self();
    std::thread writer([&] {
        // First half of the frame (cutting inside the payload), then
        // a signal at the reader while it blocks mid-frame, then the
        // rest. readFrame must resume and deliver the whole frame.
        size_t half = wire.size() / 2;
        ASSERT_EQ(::write(p.fds[1], wire.data(), half),
                  static_cast<ssize_t>(half));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ::pthread_kill(reader, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ASSERT_EQ(::write(p.fds[1], wire.data() + half,
                          wire.size() - half),
                  static_cast<ssize_t>(wire.size() - half));
    });
    std::string payload;
    EXPECT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "rec 3 99 run 5 947 0");
    writer.join();
}

TEST(FrameIoTest, SignalBetweenFramesInterruptsTheRead)
{
    installInterrupting(SIGUSR1);
    Pipe p;

    pthread_t reader = ::pthread_self();
    std::thread interrupter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ::pthread_kill(reader, SIGUSR1);
    });
    // Nothing written: the read blocks before the first byte of any
    // frame, where a signal must pop it out with -1 (the worker then
    // checks its interrupt flag).
    std::string payload;
    EXPECT_EQ(readFrame(p.fds[0], payload), -1);
    interrupter.join();
}

// ---------------------------------------------------------------------
// Hostile frames. Remote workers take these off a TCP socket, so
// every parser must reject adversarial bytes outright — a malformed
// unit descriptor must never become an injection.

TEST(WorkFrameTest, RoundTrips)
{
    WorkFrame in;
    in.unit = 42;
    in.workload = "stringsearch";
    in.component = "l1d";
    in.faults = 2;
    in.goldenKey = "g0123456789abcdef-fedcba9876543210";
    in.indices = {0, 7, 193};

    WorkFrame out;
    ASSERT_TRUE(parseWorkFrame(buildWorkFrame(in), out));
    EXPECT_EQ(out.unit, 42);
    EXPECT_EQ(out.workload, "stringsearch");
    EXPECT_EQ(out.component, "l1d");
    EXPECT_EQ(out.faults, 2u);
    EXPECT_EQ(out.goldenKey, in.goldenKey);
    EXPECT_EQ(out.indices, in.indices);
}

TEST(WorkFrameTest, RejectsHostileVariants)
{
    WorkFrame out;
    // The shapes a corrupted or adversarial stream produces: the
    // strict parsers must reject each one rather than guess.
    const char* hostile[] = {
        "",
        "work",
        "work x stringsearch l1d 2 - 1 0",       // non-numeric unit
        "work -1 stringsearch l1d 2 - 1 0",      // negative unit
        "work 1 stringsearch l1d x - 1 0",       // non-numeric faults
        "work 1 stringsearch l1d 2 - 2 0",       // truncated index list
        "work 1 stringsearch l1d 2 - 1 0 7",     // extra index
        "work 1 stringsearch l1d 2 - 1 0 junk",  // trailing garbage
        "work 1 stringsearch l1d 2 - 1 99999999999",     // index overflow
        "work 1 stringsearch l1d 18446744073709551617 - 1 0",
        "work 1 str/../../etc l1d 2 - 1 0",      // hostile name bytes
        "work 1 stringsearch l1d 2 - 4294967295 0",      // absurd count
        "worm 1 stringsearch l1d 2 - 1 0",       // wrong tag
    };
    for (const char* payload : hostile)
        EXPECT_FALSE(parseWorkFrame(payload, out)) << payload;
}

TEST(CfgFrameTest, RoundTripsWithEnvKnobs)
{
    CfgFrame in;
    in.injections = 77;
    in.seed = 0xdeadbeefcafe;
    in.clusterRows = 2;
    in.clusterCols = 5;
    in.timeoutFactor = 9;
    in.inOrder = true;
    in.heartbeatMs = 1234;
    in.shipGolden = false;
    in.env.emplace_back("MBUSIM_CHECKPOINTS", "16");
    in.env.emplace_back("MBUSIM_EARLY_EXIT", "0");

    CfgFrame out;
    ASSERT_TRUE(parseCfgFrame(buildCfgFrame(in), out));
    EXPECT_EQ(out.injections, 77u);
    EXPECT_EQ(out.seed, 0xdeadbeefcafeull);
    EXPECT_EQ(out.clusterRows, 2u);
    EXPECT_EQ(out.clusterCols, 5u);
    EXPECT_EQ(out.timeoutFactor, 9u);
    EXPECT_TRUE(out.inOrder);
    EXPECT_EQ(out.heartbeatMs, 1234u);
    EXPECT_FALSE(out.shipGolden);
    ASSERT_EQ(out.env.size(), 2u);
    EXPECT_EQ(out.env[0].first, "MBUSIM_CHECKPOINTS");
    EXPECT_EQ(out.env[0].second, "16");
}

TEST(CfgFrameTest, RejectsHostileVariants)
{
    CfgFrame out;
    const char* hostile[] = {
        "",
        "cfg",
        "cfg injections=abc seed=1 cluster=3x3 timeout=4 inorder=0 "
        "hb=0 ship=1",
        "cfg injections=4 seed=99999999999999999999 cluster=3x3 "
        "timeout=4 inorder=0 hb=0 ship=1",       // seed overflow
        "cfg injections=4 seed=1 cluster=3y3 timeout=4 inorder=0 "
        "hb=0 ship=1",                           // bad cluster shape
        "cfg injections=4 seed=1 cluster=3x3 timeout=4 inorder=2 "
        "hb=0 ship=1",                           // non-bool flag
        "cfg injections=4 seed=1 cluster=3x3 timeout=4 inorder=0 "
        "hb=0 ship=1 e:PATH=/tmp/evil",          // non-forwardable knob
        "cfg injections=4 seed=1 cluster=3x3 timeout=4 inorder=0 "
        "hb=0 ship=1 e:MBUSIM_CHECKPOINTS=$(rm)", // non-numeric value
        "cfg injections=4 seed=1 cluster=3x3 timeout=4 inorder=0 "
        "hb=0 ship=1 garbage",                   // not k=v
    };
    for (const char* payload : hostile)
        EXPECT_FALSE(parseCfgFrame(payload, out)) << payload;
}

TEST(ArtFrameTest, RoundTripsRawBytes)
{
    ArtFrame in;
    in.key = "g0123456789abcdef-fedcba9876543210";
    in.total = 1000;
    in.offset = 200;
    in.chunk = std::string("\x00\xff binary \n bytes", 18);

    ArtFrame out;
    ASSERT_TRUE(parseArtFrame(buildArtFrame(in), out));
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.total, 1000u);
    EXPECT_EQ(out.offset, 200u);
    EXPECT_EQ(out.chunk, in.chunk);
}

TEST(ArtFrameTest, RejectsOversizedAndOverrunningTransfers)
{
    ArtFrame out;
    // A hostile total must be refused before any buffering happens —
    // the worker sizes its receive buffer from this field.
    EXPECT_FALSE(parseArtFrame(
        strprintf("art k %llu 0 -",
                  static_cast<unsigned long long>(MaxArtifactBytes +
                                                  1)),
        out));
    EXPECT_FALSE(parseArtFrame("art k 18446744073709551615 0 -", out));
    // Chunk overrunning the declared total.
    ArtFrame in;
    in.key = "k";
    in.total = 4;
    in.offset = 2;
    in.chunk = "abcdef";
    EXPECT_FALSE(parseArtFrame(buildArtFrame(in), out));
    // Bad base64 payloads.
    EXPECT_FALSE(parseArtFrame("art k 8 0 a===", out));
    EXPECT_FALSE(parseArtFrame("art k 8 0 ab!d", out));
    EXPECT_FALSE(parseArtFrame("art k 8 0 abc", out));
}

TEST(Base64Test, RoundTripsAndRejectsGarbage)
{
    for (size_t n : {size_t(0), size_t(1), size_t(2), size_t(3),
                     size_t(57), size_t(256)}) {
        std::string data;
        for (size_t i = 0; i < n; ++i)
            data.push_back(static_cast<char>(i * 37 + 5));
        std::string out;
        ASSERT_TRUE(b64Decode(b64Encode(data), out)) << n;
        EXPECT_EQ(out, data) << n;
    }
    std::string out;
    EXPECT_FALSE(b64Decode("a", out));       // impossible length
    EXPECT_FALSE(b64Decode("====", out));    // padding only
    EXPECT_FALSE(b64Decode("ab=c", out));    // data after padding
    EXPECT_FALSE(b64Decode("ab\ncd==", out)); // whitespace
}

// ---------------------------------------------------------------------
// The same frames over a real TCP socket (transport.hh): the kernel
// may deliver any byte-split, so a frame written in adversarially
// small pieces must still reassemble on the far side.

TEST(TcpTransportTest, FramesSurviveByteSplitOverLoopback)
{
    uint16_t port = 0;
    int listen_fd = tcpListen(0, port);
    ASSERT_GE(listen_fd, 0);
    ASSERT_GT(port, 0);

    std::thread client([&] {
        int fd = tcpConnect("127.0.0.1", port, 5000);
        ASSERT_GE(fd, 0);
        // Two frames dribbled out a few bytes per send (TCP_NODELAY
        // is set, so these really do hit the wire as tiny segments).
        std::string wire =
            encode("work 3 stringsearch l1d 2 - 2 0 1") + encode("shutdown");
        for (size_t i = 0; i < wire.size(); i += 3) {
            size_t n = std::min<size_t>(3, wire.size() - i);
            ASSERT_EQ(::write(fd, wire.data() + i, n),
                      static_cast<ssize_t>(n));
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // And one frame via the production writer for the reply path.
        std::string payload;
        ASSERT_EQ(readFrame(fd, payload), 1);
        EXPECT_EQ(payload, "unit-done 3");
        ::close(fd);
    });

    int server_fd = tcpAccept(listen_fd);
    ASSERT_GE(server_fd, 0);
    std::string payload;
    ASSERT_EQ(readFrame(server_fd, payload), 1);
    EXPECT_EQ(payload, "work 3 stringsearch l1d 2 - 2 0 1");
    WorkFrame frame;
    ASSERT_TRUE(parseWorkFrame(payload, frame));
    EXPECT_EQ(frame.indices, (std::vector<uint32_t>{0, 1}));
    ASSERT_EQ(readFrame(server_fd, payload), 1);
    EXPECT_EQ(payload, "shutdown");
    ASSERT_TRUE(writeFrame(server_fd, "unit-done 3"));
    client.join();
    ::close(server_fd);
    ::close(listen_fd);
}

TEST(TcpTransportTest, HostPortParsingIsStrict)
{
    HostSpec out;
    EXPECT_TRUE(parseHostPort("node1:9000", out));
    EXPECT_EQ(out.host, "node1");
    EXPECT_EQ(out.port, 9000);
    EXPECT_TRUE(parseHostPort("10.0.0.2:1", out));

    const char* bad[] = {"", "node1", ":9000", "node1:", "node1:0",
                         "node1:65536", "node1:90x0", "node1:-1"};
    for (const char* spec : bad)
        EXPECT_FALSE(parseHostPort(spec, out)) << spec;
}

} // namespace
} // namespace mbusim::dist
