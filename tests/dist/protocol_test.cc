/**
 * @file
 * Unit tests of the coordinator/worker wire protocol (DESIGN.md §14).
 *
 * The framing layer is the one piece of the distributed sweep that
 * must survive byte-level adversity: workers are SIGKILLed mid-write,
 * pipes deliver frames in arbitrary chunks, and a corrupted length
 * prefix must never turn into a multi-gigabyte allocation. These
 * tests exercise FrameBuffer against every chunking of a frame
 * stream, the corrupt-prefix latch, and writeFrame/readFrame over a
 * real pipe(2) pair — including the torn-final-frame case a dead
 * worker leaves behind.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "dist/protocol.hh"

namespace mbusim::dist {
namespace {

/** Encode one frame the way writeFrame does, into a byte string. */
std::string
encode(const std::string& payload)
{
    uint32_t n = static_cast<uint32_t>(payload.size());
    char prefix[4] = {static_cast<char>(n & 0xff),
                      static_cast<char>((n >> 8) & 0xff),
                      static_cast<char>((n >> 16) & 0xff),
                      static_cast<char>((n >> 24) & 0xff)};
    return std::string(prefix, 4) + payload;
}

TEST(FrameBufferTest, RoundTripsWholeFrames)
{
    FrameBuffer fb;
    std::string wire = encode("hello 42") + encode("") + encode("hb");
    fb.feed(wire.data(), wire.size());

    std::string payload;
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hello 42");
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "");
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hb");
    EXPECT_FALSE(fb.next(payload));
    EXPECT_FALSE(fb.corrupt());
}

TEST(FrameBufferTest, ReassemblesAcrossEveryChunking)
{
    // A pipe may deliver the stream split at any byte boundary,
    // including inside the length prefix. Every split point must
    // yield the same two frames.
    std::string wire = encode("rec 7 123 run 0 947 0") + encode("unit-done 7");
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameBuffer fb;
        fb.feed(wire.data(), cut);
        fb.feed(wire.data() + cut, wire.size() - cut);

        std::string payload;
        ASSERT_TRUE(fb.next(payload)) << "cut at " << cut;
        EXPECT_EQ(payload, "rec 7 123 run 0 947 0");
        ASSERT_TRUE(fb.next(payload)) << "cut at " << cut;
        EXPECT_EQ(payload, "unit-done 7");
        EXPECT_FALSE(fb.next(payload));
    }
}

TEST(FrameBufferTest, ByteAtATime)
{
    std::string wire = encode("log W something broke");
    FrameBuffer fb;
    std::string payload;
    for (size_t i = 0; i < wire.size(); ++i) {
        EXPECT_FALSE(fb.next(payload)) << "premature frame at byte " << i;
        fb.feed(wire.data() + i, 1);
    }
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "log W something broke");
}

TEST(FrameBufferTest, TornFinalFrameStaysBuffered)
{
    // A worker SIGKILLed mid-write leaves a short final frame. The
    // buffer must hold it without emitting garbage and without
    // marking the stream corrupt (the bytes are valid, just
    // incomplete).
    std::string wire = encode("hello 99") + encode("rec 1 55 run ...");
    FrameBuffer fb;
    fb.feed(wire.data(), wire.size() - 5);

    std::string payload;
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hello 99");
    EXPECT_FALSE(fb.next(payload));
    EXPECT_FALSE(fb.corrupt());
}

TEST(FrameBufferTest, OversizedPrefixPoisonsStream)
{
    // 0xFFFFFFFF as a length prefix means the stream is garbage;
    // next() must refuse it forever rather than try to buffer 4 GiB.
    FrameBuffer fb;
    std::string good = encode("hb");
    char bad[4] = {'\xff', '\xff', '\xff', '\xff'};
    fb.feed(good.data(), good.size());
    fb.feed(bad, 4);
    fb.feed(good.data(), good.size());

    std::string payload;
    ASSERT_TRUE(fb.next(payload));
    EXPECT_EQ(payload, "hb");
    EXPECT_FALSE(fb.next(payload));
    EXPECT_TRUE(fb.corrupt());
    EXPECT_FALSE(fb.next(payload));
}

TEST(FrameBufferTest, MaxSizeFrameIsAcceptedJustOverIsNot)
{
    {
        FrameBuffer fb;
        std::string wire = encode(std::string(MaxFrameBytes, 'x'));
        fb.feed(wire.data(), wire.size());
        std::string payload;
        ASSERT_TRUE(fb.next(payload));
        EXPECT_EQ(payload.size(), MaxFrameBytes);
        EXPECT_FALSE(fb.corrupt());
    }
    {
        FrameBuffer fb;
        uint32_t n = MaxFrameBytes + 1;
        char prefix[4];
        std::memcpy(prefix, &n, 4);
        fb.feed(prefix, 4);
        std::string payload;
        EXPECT_FALSE(fb.next(payload));
        EXPECT_TRUE(fb.corrupt());
    }
}

/** RAII pipe pair for the blocking read/write tests. */
struct Pipe
{
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    void
    closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void
    closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

TEST(FrameIoTest, WriteThenReadOverPipe)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.fds[1], "work 3 stringsearch l1d 2 2 0 1"));
    ASSERT_TRUE(writeFrame(p.fds[1], "shutdown"));

    std::string payload;
    ASSERT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "work 3 stringsearch l1d 2 2 0 1");
    ASSERT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "shutdown");
}

TEST(FrameIoTest, CleanEofAtFrameBoundaryReturnsZero)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.fds[1], "hb"));
    p.closeWrite();

    std::string payload;
    ASSERT_EQ(readFrame(p.fds[0], payload), 1);
    EXPECT_EQ(payload, "hb");
    EXPECT_EQ(readFrame(p.fds[0], payload), 0);
}

TEST(FrameIoTest, TornFrameAtEofIsAnError)
{
    Pipe p;
    std::string wire = encode("rec 1 55 run 0 947 0");
    ASSERT_EQ(::write(p.fds[1], wire.data(), wire.size() - 3),
              static_cast<ssize_t>(wire.size() - 3));
    p.closeWrite();

    std::string payload;
    EXPECT_EQ(readFrame(p.fds[0], payload), -1);
}

TEST(FrameIoTest, WriteToClosedPipeFailsWithoutSignal)
{
    // The worker ignores SIGPIPE and relies on writeFrame returning
    // false once the coordinator is gone.
    ::signal(SIGPIPE, SIG_IGN);
    Pipe p;
    p.closeRead();
    EXPECT_FALSE(writeFrame(p.fds[1], "hb"));
}

} // namespace
} // namespace mbusim::dist
