/**
 * @file
 * Crash-isolation tests of the multi-process sweep coordinator
 * (DESIGN.md §14), run against the real CLI binary.
 *
 * The acceptance bar mirrors the sweep scheduler's: whatever dies —
 * a worker SIGKILLed mid-cohort, the whole coordinator, or every
 * exec() of the worker binary — the per-run results that finally
 * land must be bit-identical to a serial sweep on every field that
 * is deterministic in (config, index). Only wall_us, cohort identity
 * and the replayed flag may differ, so traces are compared after
 * stripping that fixed trailing triple. Each test execs the mbusim
 * binary (path injected by CMake as MBUSIM_CLI_PATH); the worker
 * subprocesses are then spawned from /proc/self/exe by the
 * coordinator itself, exactly as in production.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "util/interrupt.hh"

namespace {

using mbusim::clearInterrupt;

class ChaosTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Subprocesses inherit our environment; scrub every knob so
        // each test controls the sweep through argv and explicit
        // env pairs alone.
        for (const char* knob :
             {"MBUSIM_INJECTIONS", "MBUSIM_SEED", "MBUSIM_THREADS",
              "MBUSIM_CACHE_DIR", "MBUSIM_JOURNAL_DIR",
              "MBUSIM_WORKLOADS", "MBUSIM_SWEEP_SCHEDULER",
              "MBUSIM_DEADLINE_S", "MBUSIM_HEARTBEAT_S",
              "MBUSIM_EARLY_EXIT", "MBUSIM_DIGEST_POINTS",
              "MBUSIM_CHECKPOINTS", "MBUSIM_COHORT",
              "MBUSIM_LOCKSTEP",
              "MBUSIM_WORKER_PROCS", "MBUSIM_WORKER_EXE",
              "MBUSIM_LEASE_TIMEOUT_S", "MBUSIM_RESPAWN_BUDGET",
              "MBUSIM_HOSTS", "MBUSIM_SHIP_GOLDEN",
              "MBUSIM_CONNECT_GRACE_S", "MBUSIM_CONNECT_WAIT_S",
              "MBUSIM_DELTA_SNAPSHOTS", "MBUSIM_DECODE_CACHE",
              "MBUSIM_TEST_CRASH_AT", "MBUSIM_TEST_CRASH_CELL",
              "MBUSIM_TEST_CRASH_STICKY"}) {
            unsetenv(knob);
        }
        clearInterrupt();
    }

    void TearDown() override { clearInterrupt(); }
};

std::string
freshDir(const std::string& name)
{
    std::string dir = testing::TempDir() + "/chaos_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

using EnvList = std::vector<std::pair<std::string, std::string>>;

/**
 * Spawn `mbusim sweep <args>` with @p envs set, stderr captured to
 * @p errPath, stdout to @p outPath. Returns the child pid.
 */
pid_t
spawnSweep(const std::vector<std::string>& args, const EnvList& envs,
           const std::string& outPath, const std::string& errPath)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    for (const auto& [key, value] : envs)
        setenv(key.c_str(), value.c_str(), 1);
    if (!std::freopen(outPath.c_str(), "w", stdout) ||
        !std::freopen(errPath.c_str(), "w", stderr))
        _exit(126);
    std::vector<std::string> full = {MBUSIM_CLI_PATH, "sweep"};
    full.insert(full.end(), args.begin(), args.end());
    std::vector<char*> argv;
    for (std::string& arg : full)
        argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(MBUSIM_CLI_PATH, argv.data());
    _exit(127);
}

struct SweepResult
{
    int exitCode = -1;     // WEXITSTATUS, or -1 if signalled
    int termSignal = 0;    // WTERMSIG when signalled
    std::string out;
    std::string err;
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

SweepResult
await(pid_t pid, const std::string& outPath, const std::string& errPath)
{
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    SweepResult result;
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        result.termSignal = WTERMSIG(status);
    result.out = slurp(outPath);
    result.err = slurp(errPath);
    return result;
}

/** Run a sweep to completion and return its outcome. */
SweepResult
runSweep(const std::string& scratch,
         const std::vector<std::string>& args, const EnvList& envs)
{
    std::string outPath = scratch + "/sweep.out";
    std::string errPath = scratch + "/sweep.err";
    pid_t pid = spawnSweep(args, envs, outPath, errPath);
    return await(pid, outPath, errPath);
}

/**
 * Load a trace's run lines stripped of the host-bookkeeping tail
 * (cohort / replayed / wall_us — the only fields the distributed
 * engine is allowed to change). Every remaining byte, including the
 * fault mask and microarchitectural outcome, must match serial.
 */
std::multiset<std::string>
canonicalRuns(const std::string& tracePath)
{
    std::multiset<std::string> runs;
    std::ifstream in(tracePath);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"outcome\"") == std::string::npos)
            continue;
        size_t tail = line.find(",\"cohort\":");
        runs.insert(tail == std::string::npos ? line
                                              : line.substr(0, tail));
    }
    return runs;
}

/** Poll until a shard journal with some payload exists, or timeout. */
bool
waitForShardBytes(const std::string& journalDir, size_t minBytes,
                  int timeoutMs)
{
    namespace fs = std::filesystem;
    for (int elapsed = 0; elapsed < timeoutMs; elapsed += 50) {
        size_t bytes = 0;
        std::error_code ec;
        for (const auto& entry : fs::directory_iterator(journalDir, ec))
            if (entry.path().filename().string().find(".shard-") !=
                std::string::npos)
                bytes += fs::file_size(entry.path(), ec);
        if (bytes >= minBytes)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

const EnvList TinySweep = {{"MBUSIM_WORKLOADS", "stringsearch"},
                           {"MBUSIM_INJECTIONS", "4"}};

/** Serial reference trace for the TinySweep configuration. */
std::multiset<std::string>
serialReference(const std::string& scratch)
{
    std::string trace = scratch + "/serial.jsonl";
    SweepResult serial = runSweep(
        scratch, {"--serial", "--trace-out", trace}, TinySweep);
    EXPECT_EQ(serial.exitCode, 0) << serial.err;
    std::multiset<std::string> runs = canonicalRuns(trace);
    EXPECT_FALSE(runs.empty());
    return runs;
}

/**
 * The healthy path: a multi-process sweep must reproduce the serial
 * sweep bit-for-bit on every deterministic field.
 */
TEST_F(ChaosTest, DistMatchesSerial)
{
    std::string scratch = freshDir("dist_matches_serial");
    std::multiset<std::string> serial = serialReference(scratch);

    std::string trace = scratch + "/dist.jsonl";
    SweepResult dist = runSweep(scratch,
                                {"--worker-procs", "3", "--journal-dir",
                                 scratch + "/j", "--trace-out", trace},
                                TinySweep);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * A worker SIGKILLed mid-cohort (deterministic crash hook, DESIGN.md
 * §14.5) loses only its in-flight unit: the coordinator requeues the
 * pending runs and the final results still match serial exactly.
 */
TEST_F(ChaosTest, CrashedWorkerWorkIsReclaimed)
{
    std::string scratch = freshDir("worker_crash");
    std::multiset<std::string> serial = serialReference(scratch);

    EnvList envs = TinySweep;
    envs.emplace_back("MBUSIM_TEST_CRASH_AT", "2");
    std::string trace = scratch + "/dist.jsonl";
    SweepResult dist = runSweep(scratch,
                                {"--worker-procs", "2", "--journal-dir",
                                 scratch + "/j", "--trace-out", trace},
                                envs);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_NE(dist.err.find("requeueing"), std::string::npos)
        << "expected at least one reclamation: " << dist.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * Lockstep chaos drill: workers crashing mid-sweep while cohorts ride
 * the shared golden cursor (MBUSIM_LOCKSTEP=1, the default). Overlay
 * state is confined to one worker's in-flight unit — an attached but
 * unretired run is never journalled, so no overlay can leak across a
 * dist frame boundary into another worker's replay. The reclaimed
 * sweep must match a serial, lockstep-off reference bit-for-bit on
 * every deterministic field.
 */
TEST_F(ChaosTest, LockstepSurvivesWorkerCrashes)
{
    std::string scratch = freshDir("lockstep_crash");
    EnvList serialEnvs = TinySweep;
    serialEnvs.emplace_back("MBUSIM_LOCKSTEP", "0");
    std::string serialTrace = scratch + "/serial.jsonl";
    SweepResult serialRun = runSweep(
        scratch, {"--serial", "--trace-out", serialTrace}, serialEnvs);
    ASSERT_EQ(serialRun.exitCode, 0) << serialRun.err;
    std::multiset<std::string> serial = canonicalRuns(serialTrace);
    ASSERT_FALSE(serial.empty());

    EnvList envs = TinySweep;
    envs.emplace_back("MBUSIM_LOCKSTEP", "1");
    envs.emplace_back("MBUSIM_TEST_CRASH_AT", "2");
    std::string trace = scratch + "/dist.jsonl";
    SweepResult dist = runSweep(scratch,
                                {"--worker-procs", "2", "--journal-dir",
                                 scratch + "/j", "--trace-out", trace},
                                envs);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * A run that persistently kills workers (sticky crash hook) must be
 * quarantined — split to a singleton unit, then recorded as
 * Outcome::Error — instead of burning the respawn budget forever.
 * Every other run in the sweep still matches serial.
 */
TEST_F(ChaosTest, StickyCrashQuarantinesPoisonRun)
{
    std::string scratch = freshDir("sticky_crash");
    std::multiset<std::string> serial = serialReference(scratch);

    EnvList envs = TinySweep;
    envs.emplace_back("MBUSIM_TEST_CRASH_AT", "1");
    envs.emplace_back("MBUSIM_TEST_CRASH_STICKY", "1");
    envs.emplace_back("MBUSIM_TEST_CRASH_CELL", "stringsearch:regfile:f2");
    envs.emplace_back("MBUSIM_RESPAWN_BUDGET", "64");
    std::string trace = scratch + "/dist.jsonl";
    SweepResult dist = runSweep(scratch,
                                {"--worker-procs", "2", "--journal-dir",
                                 scratch + "/j", "--trace-out", trace},
                                envs);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_NE(dist.err.find("persistently kills"), std::string::npos)
        << dist.err;

    std::multiset<std::string> dist_runs = canonicalRuns(trace);
    std::vector<std::string> errors;
    for (const std::string& run : dist_runs)
        if (run.find("\"Error\"") != std::string::npos)
            errors.push_back(run);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("\"run\":1,"), std::string::npos);
    EXPECT_NE(errors[0].find("\"component\":\"regfile\""),
              std::string::npos);
    EXPECT_NE(errors[0].find("\"faults\":2"), std::string::npos);

    // Apart from the quarantined run, results are unchanged.
    std::multiset<std::string> rest = dist_runs;
    rest.erase(errors[0]);
    size_t matched = 0;
    for (const std::string& run : rest)
        matched += serial.count(run);
    EXPECT_EQ(matched, rest.size());
    EXPECT_EQ(rest.size() + 1, serial.size());
}

/**
 * SIGTERM to the coordinator drains like ^C — exit 130, journals
 * flushed and shards merged — and a rerun over the same journal
 * directory resumes to a trace identical to serial.
 */
TEST_F(ChaosTest, SigtermCancelsAndRerunResumes)
{
    std::string scratch = freshDir("sigterm_resume");
    std::multiset<std::string> serial = serialReference(scratch);

    std::string journals = scratch + "/j";
    pid_t pid = spawnSweep({"--worker-procs", "2", "--journal-dir",
                            journals},
                           TinySweep, scratch + "/c.out",
                           scratch + "/c.err");
    // Wait for some durable progress so the rerun has work to resume,
    // then interrupt. If the sweep wins the race and finishes first,
    // the signal is a no-op and the rerun resumes everything — the
    // equivalence assertion below holds either way.
    waitForShardBytes(journals, 256, 8000);
    ::kill(pid, SIGTERM);
    SweepResult first = await(pid, scratch + "/c.out", scratch + "/c.err");
    EXPECT_TRUE(first.exitCode == 130 || first.exitCode == 0)
        << first.exitCode << "\n" << first.err;

    std::string trace = scratch + "/rerun.jsonl";
    SweepResult rerun = runSweep(scratch,
                                 {"--worker-procs", "2", "--journal-dir",
                                  journals, "--trace-out", trace},
                                 TinySweep);
    ASSERT_EQ(rerun.exitCode, 0) << rerun.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * SIGKILL to the coordinator — no cleanup of any kind — must still
 * leave resumable state: orphaned workers' shard journals are
 * absorbed by the next sweep, which completes with serial-identical
 * results.
 */
TEST_F(ChaosTest, KilledCoordinatorLeavesResumableShards)
{
    std::string scratch = freshDir("coordinator_kill");
    std::multiset<std::string> serial = serialReference(scratch);

    std::string journals = scratch + "/j";
    pid_t pid = spawnSweep({"--worker-procs", "2", "--journal-dir",
                            journals},
                           TinySweep, scratch + "/c.out",
                           scratch + "/c.err");
    waitForShardBytes(journals, 256, 8000);
    ::kill(pid, SIGKILL);
    SweepResult first = await(pid, scratch + "/c.out", scratch + "/c.err");
    EXPECT_TRUE(first.termSignal == SIGKILL || first.exitCode == 0);

    // Orphaned workers stop on their own (dead pipe); their shards
    // are merged at the next sweep's startup, before any Execution
    // opens a canonical journal.
    std::string trace = scratch + "/rerun.jsonl";
    SweepResult rerun = runSweep(scratch,
                                 {"--worker-procs", "2", "--journal-dir",
                                  journals, "--trace-out", trace},
                                 TinySweep);
    ASSERT_EQ(rerun.exitCode, 0) << rerun.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

// ---------------------------------------------------------------------
// Cross-host execution over loopback TCP (DESIGN.md §17). The remote
// transport must be invisible in the results: the same frames ride
// sockets instead of pipes, golden identity is proven by the
// content-addressed key in each work frame, and a lost connection is
// just another lease expiry.

/** Spawn `mbusim worker <args>`, stdout/stderr captured. */
pid_t
spawnWorker(const std::vector<std::string>& args, const EnvList& envs,
            const std::string& outPath, const std::string& errPath)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    for (const auto& [key, value] : envs)
        setenv(key.c_str(), value.c_str(), 1);
    if (!std::freopen(outPath.c_str(), "w", stdout) ||
        !std::freopen(errPath.c_str(), "w", stderr))
        _exit(126);
    std::vector<std::string> full = {MBUSIM_CLI_PATH, "worker"};
    full.insert(full.end(), args.begin(), args.end());
    std::vector<char*> argv;
    for (std::string& arg : full)
        argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(MBUSIM_CLI_PATH, argv.data());
    _exit(127);
}

/**
 * Poll @p path until a line containing "<needle> <port>" appears;
 * returns the port, or 0 on timeout. Both the worker (--listen 0) and
 * the coordinator (sweep --listen 0) announce their ephemeral port
 * this way.
 */
uint16_t
waitForPort(const std::string& path, const std::string& needle,
            int timeoutMs)
{
    for (int elapsed = 0; elapsed < timeoutMs; elapsed += 50) {
        std::string text = slurp(path);
        size_t at = text.find(needle);
        if (at != std::string::npos) {
            at += needle.size();
            unsigned port = 0;
            if (std::sscanf(text.c_str() + at, "%u", &port) == 1 &&
                port > 0 && port <= 65535)
                return static_cast<uint16_t>(port);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return 0;
}

/** SIGTERM + reap one helper process, tolerating prior death. */
void
stopProcess(pid_t pid)
{
    ::kill(pid, SIGTERM);
    int status = 0;
    for (int elapsed = 0; elapsed < 5000; elapsed += 50) {
        if (::waitpid(pid, &status, WNOHANG) == pid)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
}

/**
 * Two loopback TCP workers, zero local ones: the sweep's trace must be
 * field-for-field identical to serial on everything deterministic in
 * (config, index) — the documented host-side tail (wall_us, cohort
 * identity, replayed) is the only permitted difference.
 */
TEST_F(ChaosTest, TcpLoopbackHostsMatchSerial)
{
    std::string scratch = freshDir("tcp_hosts");
    std::multiset<std::string> serial = serialReference(scratch);

    pid_t w1 = spawnWorker({"--listen", "0"}, {}, scratch + "/w1.out",
                           scratch + "/w1.err");
    pid_t w2 = spawnWorker({"--listen", "0"}, {}, scratch + "/w2.out",
                           scratch + "/w2.err");
    uint16_t p1 = waitForPort(scratch + "/w1.out",
                              "listening on port ", 5000);
    uint16_t p2 = waitForPort(scratch + "/w2.out",
                              "listening on port ", 5000);
    ASSERT_GT(p1, 0) << slurp(scratch + "/w1.err");
    ASSERT_GT(p2, 0) << slurp(scratch + "/w2.err");

    std::string trace = scratch + "/dist.jsonl";
    SweepResult dist =
        runSweep(scratch,
                 {"--worker-procs", "0", "--hosts",
                  "127.0.0.1:" + std::to_string(p1) + ",127.0.0.1:" +
                      std::to_string(p2),
                  "--journal-dir", scratch + "/j", "--trace-out",
                  trace},
                 TinySweep);
    stopProcess(w1);
    stopProcess(w2);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * SIGKILL one of two remote workers mid-sweep: the broken connection
 * expires its lease, the in-flight unit requeues on the survivor, and
 * the sweep completes with zero lost and zero duplicated runs.
 */
TEST_F(ChaosTest, TcpKilledRemoteWorkerIsReclaimed)
{
    std::string scratch = freshDir("tcp_kill");
    std::multiset<std::string> serial = serialReference(scratch);

    pid_t w1 = spawnWorker({"--listen", "0"}, {}, scratch + "/w1.out",
                           scratch + "/w1.err");
    pid_t w2 = spawnWorker({"--listen", "0"}, {}, scratch + "/w2.out",
                           scratch + "/w2.err");
    uint16_t p1 = waitForPort(scratch + "/w1.out",
                              "listening on port ", 5000);
    uint16_t p2 = waitForPort(scratch + "/w2.out",
                              "listening on port ", 5000);
    ASSERT_GT(p1, 0);
    ASSERT_GT(p2, 0);

    std::string journals = scratch + "/j";
    std::string trace = scratch + "/dist.jsonl";
    pid_t sweep = spawnSweep(
        {"--worker-procs", "0", "--hosts",
         "127.0.0.1:" + std::to_string(p1) + ",127.0.0.1:" +
             std::to_string(p2),
         "--journal-dir", journals, "--trace-out", trace},
        TinySweep, scratch + "/c.out", scratch + "/c.err");
    // Remote records land in coordinator-side shards; once some are
    // durable the sweep is mid-flight and worker 1 likely holds a
    // lease. If the sweep wins the race and finishes first the kill
    // is a no-op — the equivalence assertion holds either way.
    waitForShardBytes(journals, 256, 8000);
    ::kill(w1, SIGKILL);
    int status = 0;
    ::waitpid(w1, &status, 0);

    SweepResult dist =
        await(sweep, scratch + "/c.out", scratch + "/c.err");
    stopProcess(w2);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * The dial-in direction: the coordinator opens a listen socket
 * (`sweep --listen 0`) and a remote worker connects to it (`worker
 * --connect`). Same equivalence bar as the dial-out path.
 */
TEST_F(ChaosTest, TcpDialInWorkerMatchesSerial)
{
    std::string scratch = freshDir("tcp_dialin");
    std::multiset<std::string> serial = serialReference(scratch);

    std::string trace = scratch + "/dist.jsonl";
    pid_t sweep = spawnSweep({"--worker-procs", "0", "--listen", "0",
                              "--journal-dir", scratch + "/j",
                              "--trace-out", trace},
                             TinySweep, scratch + "/c.out",
                             scratch + "/c.err");
    uint16_t port = waitForPort(scratch + "/c.err",
                                "accepting workers on port ", 5000);
    ASSERT_GT(port, 0) << slurp(scratch + "/c.err");

    pid_t worker = spawnWorker(
        {"--connect", "127.0.0.1:" + std::to_string(port)}, {},
        scratch + "/w.out", scratch + "/w.err");
    SweepResult dist =
        await(sweep, scratch + "/c.out", scratch + "/c.err");
    stopProcess(worker);
    ASSERT_EQ(dist.exitCode, 0)
        << dist.err << "\nworker: " << slurp(scratch + "/w.err");
    EXPECT_EQ(canonicalRuns(trace), serial);
}

/**
 * When the worker binary cannot be spawned at all, the respawn
 * budget runs out and the coordinator degrades to the in-process
 * scheduler rather than failing the sweep.
 */
TEST_F(ChaosTest, DegradesWhenWorkerExecFails)
{
    std::string scratch = freshDir("degraded");
    std::multiset<std::string> serial = serialReference(scratch);

    EnvList envs = TinySweep;
    envs.emplace_back("MBUSIM_WORKER_EXE", "/nonexistent/worker");
    envs.emplace_back("MBUSIM_RESPAWN_BUDGET", "2");
    std::string trace = scratch + "/dist.jsonl";
    SweepResult dist = runSweep(
        scratch, {"--worker-procs", "2", "--trace-out", trace}, envs);
    ASSERT_EQ(dist.exitCode, 0) << dist.err;
    EXPECT_NE(dist.err.find("respawn budget"), std::string::npos)
        << dist.err;
    EXPECT_EQ(canonicalRuns(trace), serial);
}

} // namespace
