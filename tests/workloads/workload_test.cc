/**
 * @file
 * Registry-level tests for the workload suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/funcsim.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace mbusim::workloads {
namespace {

TEST(Workloads, FifteenRegistered)
{
    EXPECT_EQ(allWorkloads().size(), 15u);
}

TEST(Workloads, NamesMatchPaperTableIII)
{
    const std::set<std::string> expected = {
        "CRC32", "FFT", "ADPCM_dec", "basicmath", "cjpeg", "dijkstra",
        "djpeg", "gsm_dec", "qsort", "rijndael_dec", "sha",
        "stringsearch", "susan_c", "susan_e", "susan_s",
    };
    std::set<std::string> actual;
    for (const auto& w : allWorkloads())
        actual.insert(w.name);
    EXPECT_EQ(actual, expected);
}

TEST(Workloads, PaperCyclesMatchTableIII)
{
    EXPECT_EQ(workloadByName("CRC32").paperCycles, 132195721u);
    EXPECT_EQ(workloadByName("stringsearch").paperCycles, 1082451u);
    EXPECT_EQ(workloadByName("susan_s").paperCycles, 13750557u);
}

TEST(Workloads, LookupUnknownIsFatal)
{
    EXPECT_EXIT(workloadByName("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

/** Every workload assembles, runs to a clean exit and emits output. */
class WorkloadRun : public ::testing::TestWithParam<int>
{};

TEST_P(WorkloadRun, CleanDeterministicExecution)
{
    const Workload& w = allWorkloads()[static_cast<size_t>(GetParam())];
    sim::Program p = w.assemble();
    EXPECT_FALSE(p.code.empty()) << w.name;

    sim::FuncSim a(p);
    sim::FuncResult ra = a.run(50'000'000);
    EXPECT_EQ(ra.status.kind, sim::ExitKind::Exited) << w.name;
    EXPECT_EQ(ra.status.exitCode, 0u) << w.name;
    EXPECT_FALSE(ra.output.empty()) << w.name;
    EXPECT_GT(ra.instructions, 1000u) << w.name;

    // Deterministic: a second run is identical.
    sim::FuncSim b(p);
    sim::FuncResult rb = b.run(50'000'000);
    EXPECT_EQ(ra.output, rb.output) << w.name;
    EXPECT_EQ(ra.instructions, rb.instructions) << w.name;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadRun, ::testing::Range(0, 15),
                         [](const auto& info) {
                             return allWorkloads()[static_cast<size_t>(
                                 info.param)].name;
                         });

TEST(Workloads, RelativeCycleCountsFollowTableIIIOrder)
{
    // Table III ordering must hold for our scaled workloads: sorting by
    // paperCycles and by measured cycles on the timing model gives the
    // same permutation. (Cycles are what Eq. 2 weights by.)
    std::vector<std::pair<uint64_t, std::string>> by_paper, by_measured;
    sim::CpuConfig config;
    for (const auto& w : allWorkloads()) {
        sim::Simulator simulator(w.assemble(), config);
        sim::SimResult r = simulator.run(10'000'000);
        ASSERT_EQ(r.status.kind, sim::ExitKind::Exited) << w.name;
        by_paper.emplace_back(w.paperCycles, w.name);
        by_measured.emplace_back(r.cycles, w.name);
    }
    std::sort(by_paper.begin(), by_paper.end());
    std::sort(by_measured.begin(), by_measured.end());
    for (size_t i = 0; i < by_paper.size(); ++i)
        EXPECT_EQ(by_paper[i].second, by_measured[i].second) << i;
}

} // namespace
} // namespace mbusim::workloads
