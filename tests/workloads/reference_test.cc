/**
 * @file
 * Host-side reference implementations of all 15 workloads.
 *
 * Each test re-implements the workload's algorithm in C++ (same LCG
 * stream, same integer arithmetic) and requires the assembly program,
 * executed on the functional simulator, to produce a byte-identical
 * output stream. This pins the workloads down end to end: an assembler
 * bug, an ISA semantics bug or an asm coding bug all surface here.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/funcsim.hh"
#include "workloads/workload.hh"

namespace mbusim::workloads {
namespace {

/** The workloads' shared linear congruential generator. */
class Lcg
{
  public:
    explicit Lcg(uint32_t seed) : x_(seed) {}

    uint32_t next()
    {
        x_ = x_ * 1103515245u + 12345u;
        return x_;
    }

    uint32_t state() const { return x_; }

  private:
    uint32_t x_;
};

/** Expected-output accumulator mirroring the PutChar/PutWord syscalls. */
struct OutStream
{
    std::vector<uint8_t> bytes;

    void putWord(uint32_t w)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    }
};

std::vector<uint8_t>
runWorkload(const std::string& name)
{
    const Workload& w = workloadByName(name);
    sim::FuncSim fs(w.assemble());
    sim::FuncResult r = fs.run(50'000'000);
    EXPECT_EQ(r.status.kind, sim::ExitKind::Exited) << name;
    EXPECT_EQ(r.status.exitCode, 0u) << name;
    return r.output;
}

int32_t
fmul(int32_t a, int32_t b)
{
    return static_cast<int32_t>(
        (static_cast<int64_t>(a) * static_cast<int64_t>(b)) >> 16);
}

TEST(WorkloadReference, Crc32)
{
    uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (c >> 1) ^ 0xEDB88320u : c >> 1;
        table[i] = c;
    }
    Lcg lcg(0x12345678);
    std::vector<uint8_t> buf(40960);
    for (auto& b : buf)
        b = static_cast<uint8_t>(lcg.next() >> 16);
    OutStream out;
    for (int pass = 0; pass < 1; ++pass) {
        uint32_t crc = 0xFFFFFFFFu;
        for (uint8_t b : buf)
            crc = (crc >> 8) ^ table[(crc ^ b) & 0xff];
        out.putWord(~crc);
    }
    EXPECT_EQ(runWorkload("CRC32"), out.bytes);
}

TEST(WorkloadReference, Fft)
{
    constexpr int N = 256;
    static const int32_t wtab[8][2] = {
        {-65536, 0}, {0, -65536}, {46341, -46341}, {60547, -25080},
        {64277, -12785}, {65220, -6424}, {65457, -3216},
        {65516, -1608},
    };
    Lcg lcg(0xCAFE1234);
    int32_t re[N], im[N];
    for (int i = 0; i < N; ++i) {
        uint32_t s = (lcg.next() >> 16) & 0xffff;
        re[i] = static_cast<int16_t>(s);
        im[i] = 0;
    }
    // Bit reversal (7 bits).
    for (int i = 0; i < N; ++i) {
        int j = 0, t = i;
        for (int b = 0; b < 8; ++b) {
            j = (j << 1) | (t & 1);
            t >>= 1;
        }
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    int stage = 0;
    for (int len = 2; len < 512; len <<= 1, ++stage) {
        int32_t wr0 = wtab[stage][0], wi0 = wtab[stage][1];
        int half = len / 2;
        for (int i = 0; i < N; i += len) {
            int32_t wr = 65536, wi = 0;
            for (int j = 0; j < half; ++j) {
                int i1 = i + j, i2 = i1 + half;
                int32_t tr = fmul(wr, re[i2]) - fmul(wi, im[i2]);
                int32_t ti = fmul(wr, im[i2]) + fmul(wi, re[i2]);
                re[i2] = re[i1] - tr;
                im[i2] = im[i1] - ti;
                re[i1] = re[i1] + tr;
                im[i1] = im[i1] + ti;
                int32_t nwr = fmul(wr, wr0) - fmul(wi, wi0);
                int32_t nwi = fmul(wr, wi0) + fmul(wi, wr0);
                wr = nwr;
                wi = nwi;
            }
        }
    }
    auto isqrt = [](uint32_t x) {
        uint32_t res = 0, bit = 1u << 30;
        while (bit > x)
            bit >>= 2;
        while (bit) {
            if (x >= res + bit) {
                x -= res + bit;
                res = (res >> 1) + bit;
            } else {
                res >>= 1;
            }
            bit >>= 2;
        }
        return res;
    };
    uint32_t mag_sum = 0;
    for (int i = 0; i < N; ++i) {
        uint32_t m2 = static_cast<uint32_t>(re[i]) *
                          static_cast<uint32_t>(re[i]) +
                      static_cast<uint32_t>(im[i]) *
                          static_cast<uint32_t>(im[i]);
        mag_sum += isqrt(m2);
    }
    uint32_t sum_re = 0, sum_im = 0;
    for (int i = 0; i < N; ++i) {
        sum_re += static_cast<uint32_t>(re[i]);
        sum_im += static_cast<uint32_t>(im[i]);
    }
    OutStream out;
    out.putWord(mag_sum);
    out.putWord(sum_re);
    out.putWord(sum_im);
    out.putWord(static_cast<uint32_t>(re[1]));
    out.putWord(static_cast<uint32_t>(im[1]));
    out.putWord(static_cast<uint32_t>(re[128]));
    out.putWord(static_cast<uint32_t>(im[128]));
    EXPECT_EQ(runWorkload("FFT"), out.bytes);
}

TEST(WorkloadReference, AdpcmDec)
{
    static const int step[89] = {
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
        34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130,
        143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
        494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411,
        1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660,
        4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
        10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385,
        24623, 27086, 29794, 32767,
    };
    static const int idx_adj[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                    -1, -1, -1, -1, 2, 4, 6, 8};
    Lcg lcg(0xBEEF0001);
    int valpred = 0, index = 0;
    uint32_t sum = 0;
    int emit = 256;
    OutStream out;
    std::vector<int16_t> outbuf(3500);
    int remaining = 3500;
    for (int n = 0; n < 3500; ++n) {
        uint32_t delta = (lcg.next() >> 13) & 15;
        int s = step[index];
        int vpdiff = s >> 3;
        if (delta & 4)
            vpdiff += s;
        if (delta & 2)
            vpdiff += s >> 1;
        if (delta & 1)
            vpdiff += s >> 2;
        valpred = (delta & 8) ? valpred - vpdiff : valpred + vpdiff;
        valpred = std::clamp(valpred, -32768, 32767);
        index = std::clamp(index + idx_adj[delta], 0, 88);
        sum += static_cast<uint32_t>(valpred);
        // the workload stores samples indexed by its down-counter
        outbuf[static_cast<size_t>(remaining--) - 1] =
            static_cast<int16_t>(valpred);
        if (--emit == 0) {
            emit = 256;
            out.putWord(static_cast<uint32_t>(valpred));
        }
    }
    out.putWord(sum);
    out.putWord(static_cast<uint32_t>(index));
    uint32_t buf_sum = 0;
    for (int16_t s : outbuf)
        buf_sum += static_cast<uint32_t>(static_cast<int32_t>(s));
    out.putWord(buf_sum);
    EXPECT_EQ(runWorkload("ADPCM_dec"), out.bytes);
}

TEST(WorkloadReference, Basicmath)
{
    auto isqrt = [](uint32_t x) {
        uint32_t res = 0, bit = 1u << 30;
        while (bit > x)
            bit >>= 2;
        while (bit) {
            if (x >= res + bit) {
                x -= res + bit;
                res = (res >> 1) + bit;
            } else {
                res >>= 1;
            }
            bit >>= 2;
        }
        return res;
    };
    auto icbrt = [](uint32_t x) {
        uint32_t y = 0;
        for (int s = 30; s >= 0; s -= 3) {
            y = 2 * y;
            uint32_t b = 3 * y * (y + 1) + 1;
            if ((x >> s) >= b) {
                x -= b << s;
                ++y;
            }
        }
        return y;
    };
    Lcg lcg(0x0BADF00D);
    uint32_t sq = 0, cb = 0, rad = 0;
    OutStream out;
    for (int remaining = 600; remaining >= 1; --remaining) {
        uint32_t x = lcg.next();
        sq += isqrt(x);
        cb += icbrt(x);
        rad += (x & 0x1ff) * 1144;
        if ((remaining & 63) == 0)
            out.putWord(sq);
    }
    out.putWord(sq);
    out.putWord(cb);
    out.putWord(rad);
    EXPECT_EQ(runWorkload("basicmath"), out.bytes);
}

/** Shared cjpeg/djpeg tables. */
struct JpegTables
{
    int32_t costab[32];
    static constexpr int quant[64] = {
        16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55,
        14, 13, 16, 24, 40, 57, 69, 56, 14, 17, 22, 29, 51, 87, 80, 62,
        18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
        92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112,
        100, 103, 99,
    };
    static constexpr int zigzag[64] = {
        0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
        12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
        35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
        58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
    };

    JpegTables()
    {
        costab[0] = 16384;
        costab[1] = 16069;
        for (int k = 2; k < 32; ++k) {
            costab[k] = ((2 * 16069 * costab[k - 1]) >> 14)
                        - costab[k - 2];
        }
    }
};

TEST(WorkloadReference, Cjpeg)
{
    JpegTables t;
    Lcg lcg(0x5EED1234);
    OutStream out;
    for (int blk = 0; blk < 4; ++blk) {
        int32_t f[64], tmp[64], o[64];
        for (int i = 0; i < 64; ++i)
            f[i] = static_cast<int>((lcg.next() >> 16) & 0xff) - 128;
        for (int u = 0; u < 8; ++u) {
            for (int y = 0; y < 8; ++y) {
                int32_t acc = 0;
                for (int x = 0; x < 8; ++x)
                    acc += t.costab[((2 * x + 1) * u) & 31]
                           * f[x * 8 + y];
                tmp[u * 8 + y] = acc >> 14;
            }
        }
        for (int u = 0; u < 8; ++u) {
            for (int v = 0; v < 8; ++v) {
                int32_t acc = 0;
                for (int y = 0; y < 8; ++y)
                    acc += t.costab[((2 * y + 1) * v) & 31]
                           * tmp[u * 8 + y];
                o[u * 8 + v] = acc >> 14;
            }
        }
        for (int i = 0; i < 64; ++i) {
            int32_t val = o[i] >> 2;
            if (i / 8 == 0)
                val = (val * 11585) >> 14;
            if (i % 8 == 0)
                val = (val * 11585) >> 14;
            o[i] = val / JpegTables::quant[i];
        }
        int run = 0;
        for (int k = 0; k < 64; ++k) {
            int32_t z = o[JpegTables::zigzag[k]];
            if (z == 0) {
                ++run;
            } else {
                out.putWord((static_cast<uint32_t>(run) << 16) |
                            (static_cast<uint32_t>(z) & 0xffff));
                run = 0;
            }
        }
        out.putWord(0xFFFF0000u);
    }
    EXPECT_EQ(runWorkload("cjpeg"), out.bytes);
}

TEST(WorkloadReference, Djpeg)
{
    JpegTables t;
    Lcg lcg(0xD0DEC0DE);
    OutStream out;
    uint32_t checksum = 0;
    for (int blk = 0; blk < 5; ++blk) {
        int32_t g[64];
        for (int i = 0; i < 64; ++i) {
            uint32_t x = lcg.next();
            int32_t v = 0;
            if (((x >> 20) & 7) == 0) {
                v = static_cast<int>((x >> 8) & 31) - 16;
                v *= JpegTables::quant[i];
                if (i / 8 == 0)
                    v = (v * 11585) >> 14;
                if (i % 8 == 0)
                    v = (v * 11585) >> 14;
            }
            g[i] = v;
        }
        int32_t tt[16];
        for (int x = 0; x < 4; ++x) {
            for (int v = 0; v < 4; ++v) {
                int32_t acc = 0;
                for (int u = 0; u < 4; ++u) {
                    if (g[u * 8 + v])
                        acc += t.costab[((2 * x + 1) * u) & 31]
                               * g[u * 8 + v];
                }
                tt[x * 4 + v] = acc >> 14;
            }
        }
        for (int x = 0; x < 4; ++x) {
            for (int y = 0; y < 4; ++y) {
                int32_t acc = 0;
                for (int v = 0; v < 4; ++v)
                    acc += t.costab[((2 * y + 1) * v) & 31]
                           * tt[x * 4 + v];
                int32_t p = (acc >> 14) >> 1;
                p = std::clamp(p + 128, 0, 255);
                checksum += static_cast<uint32_t>(p);
                out.putWord(static_cast<uint32_t>(p));
            }
        }
    }
    out.putWord(checksum);
    EXPECT_EQ(runWorkload("djpeg"), out.bytes);
}

TEST(WorkloadReference, Dijkstra)
{
    constexpr int N = 48;
    constexpr int32_t INF = 0x7fffffff;
    int32_t adj[N][N];
    Lcg lcg(0x00C0FFEE);
    for (int i = 0; i < N; ++i) {
        for (int j = 0; j < N; ++j) {
            uint32_t w = ((lcg.next() >> 16) & 0xff) + 1;
            adj[i][j] = (i == j) ? 0 : static_cast<int32_t>(w);
        }
    }
    OutStream out;
    for (int src = 0; src < N; src += 24) {
        int32_t dist[N];
        bool seen[N] = {};
        std::fill(dist, dist + N, INF);
        dist[src] = 0;
        for (int round = 0; round < N; ++round) {
            int32_t best = INF;
            int u = -1;
            for (int i = 0; i < N; ++i) {
                if (!seen[i] && dist[i] < best) {
                    best = dist[i];
                    u = i;
                }
            }
            if (u < 0)
                break;
            seen[u] = true;
            for (int j = 0; j < N; ++j) {
                int32_t w = adj[u][j];
                if (w && best + w < dist[j])
                    dist[j] = best + w;
            }
        }
        uint32_t sum = 0;
        for (int i = 0; i < N; ++i)
            sum += static_cast<uint32_t>(dist[i]);
        out.putWord(sum);
    }
    EXPECT_EQ(runWorkload("dijkstra"), out.bytes);
}

TEST(WorkloadReference, GsmDec)
{
    static const int32_t taps[8] = {9830, -4915, 2458, -1229,
                                    614, -307, 154, -77};
    Lcg lcg(0x6A5B1E55);
    std::vector<int32_t> d(160 + 240, 0), s(8 + 240, 0);
    OutStream out;
    int n = 0;
    uint32_t total = 0;
    for (int frame = 0; frame < 6; ++frame) {
        uint32_t p = lcg.next();
        int lag = 40 + static_cast<int>(p & 63);
        int32_t gain = static_cast<int32_t>((p >> 8) & 63);
        uint32_t fsum = 0;
        for (int k = 0; k < 40; ++k, ++n) {
            uint32_t x = lcg.next();
            int32_t e = static_cast<int>((x >> 12) & 0x3ff) - 512;
            int32_t dv = e + ((gain * d[160 + n - lag]) >> 6);
            dv = std::clamp(dv, -32768, 32767);
            d[160 + n] = dv;
            int32_t sv = dv;
            for (int t = 1; t <= 8; ++t)
                sv += (taps[t - 1] * s[8 + n - t]) >> 14;
            sv = std::clamp(sv, -32768, 32767);
            s[8 + n] = sv;
            fsum += static_cast<uint32_t>(sv);
        }
        out.putWord(fsum);
        total += fsum;
    }
    out.putWord(total);
    EXPECT_EQ(runWorkload("gsm_dec"), out.bytes);
}

TEST(WorkloadReference, Qsort)
{
    Lcg lcg(0x9A8B7C6D);
    std::vector<int32_t> a(700);
    for (auto& v : a)
        v = static_cast<int32_t>(lcg.next());
    std::sort(a.begin(), a.end());
    uint32_t weighted = 0;
    for (int i = 0; i < 700; ++i)
        weighted += static_cast<uint32_t>(a[i]) *
                    static_cast<uint32_t>(i + 1);
    OutStream out;
    out.putWord(0); // no order violations
    out.putWord(static_cast<uint32_t>(a.front()));
    out.putWord(static_cast<uint32_t>(a.back()));
    out.putWord(weighted);
    EXPECT_EQ(runWorkload("qsort"), out.bytes);
}

/** Reference AES-128 with runtime-generated tables (as the asm does). */
class Aes
{
  public:
    Aes()
    {
        // exp/log over GF(2^8), generator 3.
        uint8_t v = 1;
        for (int i = 0; i < 255; ++i) {
            exp_[i] = v;
            log_[v] = static_cast<uint8_t>(i);
            v = static_cast<uint8_t>(v ^ xtime(v));
        }
        for (int a = 0; a < 256; ++a) {
            uint8_t b = 0;
            if (a) {
                int l = 255 - log_[a];
                if (l == 255)
                    l = 0;
                b = exp_[l];
            }
            uint8_t s = static_cast<uint8_t>(
                b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^
                rotl8(b, 4) ^ 0x63);
            sbox_[a] = s;
            isbox_[s] = static_cast<uint8_t>(a);
        }
    }

    /** The generated S-box must be the real AES S-box. */
    uint8_t sbox(uint8_t a) const { return sbox_[a]; }

    void
    expandKey(const uint8_t key[16])
    {
        std::memcpy(rk_, key, 16);
        uint8_t rcon = 1;
        for (int i = 16; i < 176; i += 4) {
            uint8_t t[4] = {rk_[i - 4], rk_[i - 3], rk_[i - 2],
                            rk_[i - 1]};
            if (i % 16 == 0) {
                uint8_t t0 = t[0];
                t[0] = static_cast<uint8_t>(sbox_[t[1]] ^ rcon);
                t[1] = sbox_[t[2]];
                t[2] = sbox_[t[3]];
                t[3] = sbox_[t0];
                rcon = xtime(rcon);
            }
            for (int j = 0; j < 4; ++j)
                rk_[i + j] = static_cast<uint8_t>(rk_[i - 16 + j] ^ t[j]);
        }
    }

    void
    decryptBlock(uint8_t s[16]) const
    {
        ark(s, 160);
        for (int round = 9; round >= 1; --round) {
            invShiftRows(s);
            invSubBytes(s);
            ark(s, round * 16);
            invMixColumns(s);
        }
        invShiftRows(s);
        invSubBytes(s);
        ark(s, 0);
    }

  private:
    static uint8_t
    xtime(uint8_t x)
    {
        return static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0));
    }

    static uint8_t
    rotl8(uint8_t x, int n)
    {
        return static_cast<uint8_t>((x << n) | (x >> (8 - n)));
    }

    uint8_t
    gmul(uint8_t a, uint8_t b) const
    {
        if (!a || !b)
            return 0;
        int l = log_[a] + log_[b];
        if (l >= 255)
            l -= 255;
        return exp_[l];
    }

    void
    ark(uint8_t s[16], int off) const
    {
        for (int i = 0; i < 16; ++i)
            s[i] ^= rk_[off + i];
    }

    void
    invShiftRows(uint8_t s[16]) const
    {
        uint8_t t[16];
        std::memcpy(t, s, 16);
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                s[r + 4 * c] = t[r + 4 * ((c + 4 - r) & 3)];
    }

    void
    invSubBytes(uint8_t s[16]) const
    {
        for (int i = 0; i < 16; ++i)
            s[i] = isbox_[s[i]];
    }

    void
    invMixColumns(uint8_t s[16]) const
    {
        for (int c = 0; c < 4; ++c) {
            uint8_t a0 = s[4 * c], a1 = s[4 * c + 1];
            uint8_t a2 = s[4 * c + 2], a3 = s[4 * c + 3];
            s[4 * c] = static_cast<uint8_t>(
                gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9));
            s[4 * c + 1] = static_cast<uint8_t>(
                gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                gmul(a3, 13));
            s[4 * c + 2] = static_cast<uint8_t>(
                gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                gmul(a3, 11));
            s[4 * c + 3] = static_cast<uint8_t>(
                gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                gmul(a3, 14));
        }
    }

    uint8_t exp_[256] = {};
    uint8_t log_[256] = {};
    uint8_t sbox_[256] = {};
    uint8_t isbox_[256] = {};
    uint8_t rk_[176] = {};
};

TEST(WorkloadReference, RijndaelGeneratedSboxIsRealAes)
{
    Aes aes;
    // Known AES S-box values: the workload really is Rijndael.
    EXPECT_EQ(aes.sbox(0x00), 0x63);
    EXPECT_EQ(aes.sbox(0x01), 0x7c);
    EXPECT_EQ(aes.sbox(0x53), 0xed);
    EXPECT_EQ(aes.sbox(0xff), 0x16);
}

TEST(WorkloadReference, RijndaelDec)
{
    Aes aes;
    Lcg lcg(0xA55A1DEA);
    uint8_t key[16];
    for (auto& b : key)
        b = static_cast<uint8_t>(lcg.next() >> 16);
    uint8_t ct[80];
    for (auto& b : ct)
        b = static_cast<uint8_t>(lcg.next() >> 16);
    aes.expandKey(key);
    OutStream out;
    for (int blk = 0; blk < 5; ++blk) {
        uint8_t s[16];
        std::memcpy(s, ct + blk * 16, 16);
        aes.decryptBlock(s);
        for (int wi = 0; wi < 4; ++wi) {
            uint32_t w = 0;
            for (int b = 3; b >= 0; --b)
                w = (w << 8) | s[wi * 4 + b];
            out.putWord(w);
        }
    }
    EXPECT_EQ(runWorkload("rijndael_dec"), out.bytes);
}

TEST(WorkloadReference, Sha)
{
    auto rotl = [](uint32_t x, int n) {
        return (x << n) | (x >> (32 - n));
    };
    uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                     0xC3D2E1F0};
    static const uint32_t K[4] = {0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC,
                                  0xCA62C1D6};
    Lcg lcg(0x51A0BEEF);
    for (int blk = 0; blk < 10; ++blk) {
        uint32_t w[80];
        for (int i = 0; i < 16; ++i)
            w[i] = lcg.next();
        for (int t = 16; t < 80; ++t)
            w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
        uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
        for (int t = 0; t < 80; ++t) {
            uint32_t f, k;
            if (t < 20) {
                f = (b & c) | (~b & d);
                k = K[0];
            } else if (t < 40) {
                f = b ^ c ^ d;
                k = K[1];
            } else if (t < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = K[2];
            } else {
                f = b ^ c ^ d;
                k = K[3];
            }
            uint32_t temp = rotl(a, 5) + f + e + k + w[t];
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = temp;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
    }
    OutStream out;
    for (uint32_t v : h)
        out.putWord(v);
    EXPECT_EQ(runWorkload("sha"), out.bytes);
}

TEST(WorkloadReference, Stringsearch)
{
    const std::string text =
        "a single event upset flips one bit but a multi bit upset "
        "flips a cluster of adjacent cells; as devices shrink the "
        "odds of an upset rise and protecting against every upset "
        "costs area power and time.";
    OutStream out;
    for (const std::string pat : {"upset", "cluster"}) {
        // Horspool with the workload's scan order.
        int shift[256];
        for (int i = 0; i < 128; ++i)
            shift[i] = static_cast<int>(pat.size());
        for (size_t i = 0; i + 1 < pat.size(); ++i)
            shift[static_cast<uint8_t>(pat[i])] =
                static_cast<int>(pat.size() - 1 - i);
        uint32_t count = 0, possum = 0;
        int n = static_cast<int>(text.size());
        int m = static_cast<int>(pat.size());
        int pos = 0;
        while (pos <= n - m) {
            int j = m - 1;
            while (j >= 0 && text[pos + j] == pat[j])
                --j;
            if (j < 0) {
                ++count;
                possum += static_cast<uint32_t>(pos);
            }
            pos += shift[static_cast<uint8_t>(text[pos + m - 1])];
        }
        out.putWord(count);
        out.putWord(possum);
    }
    EXPECT_EQ(runWorkload("stringsearch"), out.bytes);
}

/** Shared 12x12 LCG image for the susan family. */
std::vector<uint8_t>
susanImage()
{
    Lcg lcg(0xCA6E5EED);
    std::vector<uint8_t> img(256);   // 16x16
    for (auto& p : img)
        p = static_cast<uint8_t>(lcg.next() >> 16);
    return img;
}

TEST(WorkloadReference, SusanC)
{
    auto img = susanImage();
    uint32_t corners = 0, poschk = 0, usan_total = 0;
    for (int r = 4; r < 9; ++r) {
        for (int c = 4; c < 9; ++c) {
            int nucleus = img[r * 16 + c];
            int n = 0;
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    if (dr == 0 && dc == 0)
                        continue;
                    int d = img[(r + dr) * 16 + (c + dc)] - nucleus;
                    if (d < 0)
                        d = -d;
                    if (d <= 27)
                        ++n;
                }
            }
            usan_total += static_cast<uint32_t>(n);
            if (n < 3) {
                ++corners;
                poschk += static_cast<uint32_t>(r * 16 + c);
            }
        }
    }
    OutStream out;
    out.putWord(corners);
    out.putWord(poschk);
    out.putWord(usan_total);
    EXPECT_EQ(runWorkload("susan_c"), out.bytes);
}

TEST(WorkloadReference, SusanE)
{
    auto img = susanImage();
    uint32_t edges = 0, strength = 0, poschk = 0;
    for (int r = 3; r < 9; ++r) {
        for (int c = 3; c < 9; ++c) {
            int nucleus = img[r * 16 + c];
            int n = 0;
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    if (dr == 0 && dc == 0)
                        continue;
                    int d = img[(r + dr) * 16 + (c + dc)] - nucleus;
                    if (d < 0)
                        d = -d;
                    if (d <= 20)
                        ++n;
                }
            }
            if (n < 5) {
                ++edges;
                strength += static_cast<uint32_t>(5 - n);
                poschk += static_cast<uint32_t>(r * 16 + c);
            }
        }
    }
    OutStream out;
    out.putWord(edges);
    out.putWord(strength);
    out.putWord(poschk);
    EXPECT_EQ(runWorkload("susan_e"), out.bytes);
}

TEST(WorkloadReference, SusanS)
{
    static const int kern[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
    auto img = susanImage();
    OutStream out;
    for (int pass = 0; pass < 1; ++pass) {
        std::vector<uint8_t> dst = img;
        for (int r = 1; r < 15; ++r) {
            for (int c = 1; c < 15; ++c) {
                uint32_t acc = 0;
                for (int dr = -1; dr <= 1; ++dr)
                    for (int dc = -1; dc <= 1; ++dc)
                        acc += static_cast<uint32_t>(
                                   img[(r + dr) * 16 + c + dc]) *
                               kern[(dr + 1) * 3 + dc + 1];
                dst[r * 16 + c] = static_cast<uint8_t>(acc >> 4);
            }
        }
        img = dst;
        uint32_t checksum = 0;
        for (uint8_t p : img)
            checksum += p;
        out.putWord(checksum);
    }
    out.putWord(img[13]);
    out.putWord(img[60]);
    out.putWord(img[77]);
    out.putWord(img[130]);
    EXPECT_EQ(runWorkload("susan_s"), out.bytes);
}

} // namespace
} // namespace mbusim::workloads
