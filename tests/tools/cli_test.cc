/**
 * @file
 * Subprocess tests of the mbusim CLI's input-validation contract.
 *
 * The exit-code contract is part of the tool's scriptable interface
 * (documented in tools/mbusim_cli.cc): 0 success, 1 runtime failure,
 * 2 usage error. The old parser accepted `--faults abc` (atoi -> 0),
 * `--faults -1` (strtoul wraparound -> 4294967295) and `--injections
 * 5k` (silent truncation at the 'k'), then failed — or worse, ran the
 * wrong campaign — much later. These tests pin the strict behaviour by
 * invoking the real binary (path injected by CMake as MBUSIM_CLI_PATH)
 * and checking both the exit status and that the diagnostic is exactly
 * one line on stderr.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace {

struct CliResult
{
    int exitCode = -1;
    std::string out;
    std::string err;
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

/** Run `mbusim <args>`, capturing exit code, stdout and stderr. */
CliResult
runCli(const std::string& args)
{
    // Keyed by pid: ctest runs every case as its own process, so a
    // process-local counter alone collides under `ctest -j`.
    static int serial = 0;
    std::string base = testing::TempDir() + "/cli_test_" +
                       std::to_string(::getpid()) + "_" +
                       std::to_string(serial++);
    std::string outPath = base + ".out", errPath = base + ".err";
    std::string cmd = std::string(MBUSIM_CLI_PATH) + " " + args + " >" +
                      outPath + " 2>" + errPath;
    int status = std::system(cmd.c_str());
    CliResult result;
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result.out = slurp(outPath);
    result.err = slurp(errPath);
    std::filesystem::remove(outPath);
    std::filesystem::remove(errPath);
    return result;
}

size_t
lineCount(const std::string& text)
{
    size_t n = 0;
    for (char c : text) {
        if (c == '\n')
            ++n;
    }
    return n;
}

/** A malformed invocation must exit 2 with a one-line diagnostic. */
void
expectUsageError(const std::string& args, const std::string& needle)
{
    CliResult r = runCli(args);
    EXPECT_EQ(r.exitCode, 2) << args << "\nstderr: " << r.err;
    EXPECT_EQ(lineCount(r.err), 1u) << args << "\nstderr: " << r.err;
    EXPECT_NE(r.err.find(needle), std::string::npos)
        << args << "\nstderr: " << r.err;
}

TEST(CliUsageErrors, NonNumericFaults)
{
    expectUsageError("campaign CRC32 --faults abc",
                     "expected an unsigned integer");
}

TEST(CliUsageErrors, FaultsOutOfRange)
{
    expectUsageError("campaign CRC32 --faults 0", "out of range [1, 3]");
    expectUsageError("campaign CRC32 --faults 4", "out of range [1, 3]");
}

TEST(CliUsageErrors, NegativeFaultsIsNotWraparound)
{
    // strtoul would have read -1 as 4294967295; the strict parser
    // rejects the sign outright.
    expectUsageError("campaign CRC32 --faults -1",
                     "expected an unsigned integer");
}

TEST(CliUsageErrors, TrailingGarbage)
{
    expectUsageError("campaign CRC32 --injections 5k",
                     "trailing garbage");
    expectUsageError("campaign CRC32 --seed 0x12g", "trailing garbage");
}

TEST(CliUsageErrors, InjectionsZero)
{
    expectUsageError("campaign CRC32 --injections 0", "out of range");
}

TEST(CliUsageErrors, ClusterTooSmallForCardinality)
{
    // Cross-option feasibility is checked at parse time, not by a
    // panic deep inside the mask generator mid-campaign.
    expectUsageError("campaign CRC32 --cluster 1x1 --faults 3",
                     "cannot place 3 faults in a 1x1 cluster");
    expectUsageError("campaign CRC32 --faults 2 --cluster 1x1",
                     "cannot place 2 faults in a 1x1 cluster");
}

TEST(CliUsageErrors, MalformedCluster)
{
    expectUsageError("campaign CRC32 --cluster bogus", "expected RxC");
    expectUsageError("campaign CRC32 --cluster 3x", "expected RxC");
    expectUsageError("campaign CRC32 --cluster x3", "expected RxC");
    expectUsageError("campaign CRC32 --cluster 0x3", "out of range");
    expectUsageError("campaign CRC32 --cluster 3x9999", "out of range");
}

TEST(CliUsageErrors, UnknownComponent)
{
    expectUsageError("campaign CRC32 --component l9",
                     "unknown component");
}

TEST(CliUsageErrors, UnknownOptionAndMissingValue)
{
    expectUsageError("campaign CRC32 --badopt", "unknown option");
    expectUsageError("campaign CRC32 --faults", "needs a value");
}

TEST(CliUsageErrors, WorkerProcsValidation)
{
    expectUsageError("sweep --worker-procs abc",
                     "expected an unsigned integer");
    expectUsageError("sweep --worker-procs 5000", "out of range");
    expectUsageError("sweep --serial --worker-procs 2",
                     "incompatible with --serial");
    // Order must not matter for the cross-option check.
    expectUsageError("sweep --worker-procs 2 --serial",
                     "incompatible with --serial");
}

TEST(CliUsageErrors, BadSubcommandAndMissingProgram)
{
    EXPECT_EQ(runCli("bogus").exitCode, 2);
    EXPECT_EQ(runCli("").exitCode, 2);
    EXPECT_EQ(runCli("campaign").exitCode, 2);
}

TEST(CliObservability, TinyCampaignWithTraceAndReport)
{
    std::string trace = testing::TempDir() + "/cli_trace.jsonl";
    std::string report = testing::TempDir() + "/cli_report.csv";
    std::filesystem::remove(trace);
    std::filesystem::remove(report);

    CliResult r = runCli("campaign CRC32 --injections 2 --seed 7 "
                         "--trace-out " + trace +
                         " --report-out " + report);
    EXPECT_EQ(r.exitCode, 0) << r.err;
    EXPECT_NE(r.out.find("AVF"), std::string::npos);

    // One JSONL record per injected run.
    std::string traceText = slurp(trace);
    EXPECT_EQ(lineCount(traceText), 2u) << traceText;
    EXPECT_NE(traceText.find("{\"run\":0,"), std::string::npos);
    EXPECT_NE(traceText.find("{\"run\":1,"), std::string::npos);

    // Report: tidy CSV with the shared header.
    std::string reportText = slurp(report);
    EXPECT_EQ(reportText.rfind("table,node,component,field,value\n", 0),
              0u) << reportText;
    EXPECT_NE(reportText.find("campaign,,l1d,workload,CRC32"),
              std::string::npos) << reportText;

    std::filesystem::remove(trace);
    std::filesystem::remove(report);
}

TEST(CliObservability, ValidOptionsStillParse)
{
    // The strict parser must not reject well-formed input: hex seeds,
    // whitespace-free numerals, boundary values.
    CliResult r = runCli("campaign CRC32 --injections 1 --faults 3 "
                         "--cluster 2x2 --seed 0xbeef");
    EXPECT_EQ(r.exitCode, 0) << r.err;
}

} // namespace
