/**
 * @file
 * Unit tests for the xoshiro256** RNG wrapper.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hh"

namespace mbusim {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(123);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng base(99);
    Rng a = base.fork(1, 0);
    Rng b = base.fork(1, 1);
    Rng c = base.fork(2, 0);
    int same_ab = 0, same_ac = 0;
    for (int i = 0; i < 64; ++i) {
        uint64_t va = a.next(), vb = b.next(), vc = c.next();
        same_ab += va == vb;
        same_ac += va == vc;
    }
    EXPECT_LT(same_ab, 4);
    EXPECT_LT(same_ac, 4);
}

TEST(Rng, ForkReproducible)
{
    Rng base(99);
    Rng a1 = base.fork(5, 7);
    Rng a2 = base.fork(5, 7);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a1.next(), a2.next());
}

TEST(Rng, CoversFullRangeEventually)
{
    // All 8 values of below(8) appear within a reasonable draw budget.
    Rng rng(21);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500 && seen.size() < 8; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

} // namespace
} // namespace mbusim
