/**
 * @file
 * Tests for the checksummed append-only journal: replay semantics,
 * torn-write tolerance, and header-based invalidation.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/journal.hh"

namespace mbusim {
namespace {

std::string
tempPath(const std::string& name)
{
    std::string path = testing::TempDir() + "/" + name;
    std::filesystem::remove(path);
    return path;
}

std::string
readAll(const std::string& path)
{
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(Fnv1a64Test, ReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors; the on-disk format depends
    // on these exact values, so they must never drift.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(JournalTest, RoundTrip)
{
    std::string path = tempPath("journal_roundtrip.txt");
    {
        Journal journal(path, "hdr v1 abc");
        ASSERT_TRUE(journal.open());
        journal.append("run 0 ok");
        journal.append("run 1 ok");
    }
    std::vector<std::string> lines = Journal::replay(path, "hdr v1 abc");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "run 0 ok");
    EXPECT_EQ(lines[1], "run 1 ok");
}

TEST(JournalTest, MissingFileReplaysEmpty)
{
    EXPECT_TRUE(Journal::replay(tempPath("journal_missing.txt"),
                                "hdr").empty());
}

TEST(JournalTest, HeaderMismatchReplaysEmptyAndCtorTruncates)
{
    std::string path = tempPath("journal_header.txt");
    {
        Journal journal(path, "hdr seed=1");
        journal.append("run 0");
    }
    // A different parameter set must not see the old records...
    EXPECT_TRUE(Journal::replay(path, "hdr seed=2").empty());
    // ...and opening under the new header starts the file over.
    {
        Journal journal(path, "hdr seed=2");
        journal.append("run 7");
    }
    EXPECT_TRUE(Journal::replay(path, "hdr seed=1").empty());
    std::vector<std::string> lines = Journal::replay(path, "hdr seed=2");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "run 7");
}

TEST(JournalTest, ReopenAppendsAfterExistingRecords)
{
    std::string path = tempPath("journal_reopen.txt");
    {
        Journal journal(path, "hdr");
        journal.append("run 0");
    }
    {
        Journal journal(path, "hdr");
        journal.append("run 1");
    }
    std::vector<std::string> lines = Journal::replay(path, "hdr");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1], "run 1");
}

TEST(JournalTest, TornAndCorruptLinesSkippedIndividually)
{
    std::string path = tempPath("journal_torn.txt");
    {
        Journal journal(path, "hdr");
        journal.append("run 0");
        journal.append("run 1");
    }
    std::string contents = readAll(path);
    // Flip a payload byte of the "run 0" record (checksum now stale)
    // and simulate a torn final append.
    size_t pos = contents.find("run 0");
    ASSERT_NE(pos, std::string::npos);
    contents[pos + 4] = '9';
    contents += "run 2 #dead";   // truncated mid-checksum
    {
        std::ofstream out(path, std::ios::trunc);
        out << contents;
    }
    std::vector<std::string> lines = Journal::replay(path, "hdr");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "run 1");
}

TEST(JournalTest, UnopenableAppendIsNoop)
{
    Journal journal("/nonexistent-dir/journal.txt", "hdr");
    EXPECT_FALSE(journal.open());
    journal.append("run 0");   // must not crash
}

} // namespace
} // namespace mbusim
