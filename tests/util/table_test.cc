/**
 * @file
 * Unit tests for the text-table renderer and number formatters.
 */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace mbusim {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"A", "B"});
    t.addRow({"x", "y"});
    t.addRow({"longer", "z"});
    std::string out = t.render();
    // Every 'B'-column entry starts at the same offset.
    size_t header_pos = out.find("B");
    size_t y_line = out.find("x");
    size_t y_pos = out.find("y", y_line) - (y_line);
    size_t z_line = out.find("longer");
    size_t z_pos = out.find("z", z_line) - (z_line);
    EXPECT_EQ(y_pos, z_pos);
    EXPECT_NE(header_pos, std::string::npos);
}

TEST(TextTable, TitleAppears)
{
    TextTable t({"C"});
    t.title("TABLE X. THINGS");
    t.addRow({"v"});
    EXPECT_NE(t.render().find("TABLE X. THINGS"), std::string::npos);
}

TEST(Formatters, Percent)
{
    EXPECT_EQ(fmtPercent(0.5), "50.00%");
    EXPECT_EQ(fmtPercent(0.123456, 1), "12.3%");
    EXPECT_EQ(fmtPercent(0.0), "0.00%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Formatters, Double)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 1), "2.0");
}

TEST(Formatters, Grouped)
{
    EXPECT_EQ(fmtGrouped(0), "0");
    EXPECT_EQ(fmtGrouped(999), "999");
    EXPECT_EQ(fmtGrouped(1000), "1,000");
    EXPECT_EQ(fmtGrouped(132195721), "132,195,721");
    EXPECT_EQ(fmtGrouped(48339852), "48,339,852");   // 8 digits: the
    EXPECT_EQ(fmtGrouped(53690367), "53,690,367");   // lead-2 case once
    EXPECT_EQ(fmtGrouped(10), "10");                 // wrapped size_t
    EXPECT_EQ(fmtGrouped(1234567890123ULL), "1,234,567,890,123");
}

TEST(Formatters, Bar)
{
    EXPECT_EQ(fmtBar(0.0, 10), "");
    EXPECT_EQ(fmtBar(1.0, 10), "##########");
    EXPECT_EQ(fmtBar(0.5, 10), "#####");
    EXPECT_EQ(fmtBar(2.0, 4), "####");   // clamped
    EXPECT_EQ(fmtBar(-1.0, 4), "");      // clamped
}

} // namespace
} // namespace mbusim
