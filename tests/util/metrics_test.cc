/**
 * @file
 * Unit tests for the metrics registry (DESIGN.md §12): instrument
 * semantics, snapshot serialization, and the JSONL sink the run trace
 * is built on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hh"

namespace mbusim {
namespace {

TEST(Metrics, CounterAccumulatesAndIsStable)
{
    Metrics m;
    Counter& c = m.counter("runs");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Lookup-or-create: the same name resolves to the same instrument.
    EXPECT_EQ(&m.counter("runs"), &c);
    EXPECT_EQ(m.counter("runs").value(), 42u);
}

TEST(Metrics, GaugeSetAndAdd)
{
    Metrics m;
    Gauge& g = m.gauge("depth");
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.set(-5);
    EXPECT_EQ(g.value(), -5);
}

TEST(Metrics, ExponentialBounds)
{
    auto bounds = Histogram::exponentialBounds(64, 2, 4);
    ASSERT_EQ(bounds.size(), 4u);
    EXPECT_EQ(bounds[0], 64u);
    EXPECT_EQ(bounds[1], 128u);
    EXPECT_EQ(bounds[2], 256u);
    EXPECT_EQ(bounds[3], 512u);
}

TEST(Metrics, HistogramBucketsAndQuantiles)
{
    Metrics m;
    Histogram& h = m.histogram("wall", {10, 100, 1000});
    h.record(5);      // bucket <=10
    h.record(10);     // bucket <=10 (bound is inclusive)
    h.record(50);     // bucket <=100
    h.record(5000);   // overflow bucket

    MetricsSnapshot snap = m.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramData& d = snap.histograms[0];
    EXPECT_EQ(d.name, "wall");
    ASSERT_EQ(d.buckets.size(), 4u);   // 3 bounds + overflow
    EXPECT_EQ(d.buckets[0], 2u);
    EXPECT_EQ(d.buckets[1], 1u);
    EXPECT_EQ(d.buckets[2], 0u);
    EXPECT_EQ(d.buckets[3], 1u);
    EXPECT_EQ(d.count, 4u);
    EXPECT_EQ(d.sum, 5065u);
    EXPECT_EQ(d.max, 5000u);
    EXPECT_DOUBLE_EQ(d.mean(), 5065.0 / 4.0);
    // Quantiles resolve to bucket upper bounds; the overflow bucket
    // reports the observed max.
    EXPECT_EQ(d.quantile(0.0), 10u);
    EXPECT_EQ(d.quantile(0.5), 10u);
    EXPECT_EQ(d.quantile(0.75), 100u);
    EXPECT_EQ(d.quantile(1.0), 5000u);
}

TEST(Metrics, HistogramKeepsOriginalBoundsOnRelookup)
{
    Metrics m;
    Histogram& h = m.histogram("h", {1, 2});
    EXPECT_EQ(&m.histogram("h", {7, 8, 9}), &h);
    MetricsSnapshot snap = m.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].bounds, (std::vector<uint64_t>{1, 2}));
}

TEST(Metrics, SnapshotToJsonShape)
{
    Metrics m;
    m.counter("a.count").add(3);
    m.gauge("b.level").set(-2);
    m.histogram("c.hist", {10}).record(4);
    std::string json = m.snapshot().toJson();
    EXPECT_NE(json.find("\"counters\":{\"a.count\":3}"),
              std::string::npos) << json;
    EXPECT_NE(json.find("\"gauges\":{\"b.level\":-2}"),
              std::string::npos) << json;
    EXPECT_NE(json.find("\"c.hist\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos) << json;
}

TEST(Metrics, BriefFiltersByPrefix)
{
    Metrics m;
    m.counter("campaign.runs").add(7);
    m.counter("golden.sims").add(1);
    m.gauge("campaign.depth").set(3);
    std::string brief = m.snapshot().brief("campaign.");
    EXPECT_NE(brief.find("campaign.runs=7"), std::string::npos) << brief;
    EXPECT_NE(brief.find("campaign.depth=3"), std::string::npos) << brief;
    EXPECT_EQ(brief.find("golden.sims"), std::string::npos) << brief;
    EXPECT_TRUE(m.snapshot().brief("nomatch.").empty());
}

TEST(Metrics, ConcurrentCountersAreExact)
{
    Metrics m;
    Counter& c = m.counter("n");
    constexpr int kThreads = 4, kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, JsonQuoteEscapes)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("line\nfeed\ttab"), "\"line\\nfeed\\ttab\"");
}

TEST(Metrics, JsonlWriterOneObjectPerLine)
{
    std::string path = testing::TempDir() + "/metrics_jsonl_test.jsonl";
    std::filesystem::remove(path);
    {
        JsonlWriter writer(path);
        writer.append("{\"a\":1}");
        writer.append("{\"b\":2}");
        writer.close();
        writer.close();   // idempotent
    }
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"a\":1}");
    EXPECT_EQ(lines[1], "{\"b\":2}");
    std::filesystem::remove(path);
}

TEST(Metrics, JsonlWriterConcurrentAppendsStayLineAtomic)
{
    std::string path = testing::TempDir() + "/metrics_jsonl_mt.jsonl";
    std::filesystem::remove(path);
    constexpr int kThreads = 4, kLines = 500;
    {
        JsonlWriter writer(path);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&writer, t] {
                for (int i = 0; i < kLines; ++i) {
                    writer.append("{\"thread\":" + std::to_string(t) +
                                  ",\"i\":" + std::to_string(i) + "}");
                }
            });
        }
        for (auto& t : threads)
            t.join();
    }
    std::ifstream in(path);
    std::string line;
    size_t n = 0;
    while (std::getline(in, line)) {
        ++n;
        // Line-granularity interleaving: every line is one complete
        // object, never a torn mix of two writers.
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"thread\":"), std::string::npos);
    }
    EXPECT_EQ(n, static_cast<size_t>(kThreads) * kLines);
    std::filesystem::remove(path);
}

} // namespace
} // namespace mbusim
