/**
 * @file
 * Unit tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hh"

namespace mbusim {
namespace {

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Csv, EscapePlainFieldUnchanged)
{
    EXPECT_EQ(CsvWriter::escape("hello"), "hello");
    EXPECT_EQ(CsvWriter::escape(""), "");
    EXPECT_EQ(CsvWriter::escape("1.5"), "1.5");
}

TEST(Csv, EscapeQuotesSpecials)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsToFile)
{
    std::string path = testing::TempDir() + "/mbusim_csv_test.csv";
    {
        CsvWriter w(path);
        w.writeRow({"a", "b"});
        w.writeRow({"1", "x,y"});
        w.close();
    }
    EXPECT_EQ(slurp(path), "a,b\n1,\"x,y\"\n");
    std::remove(path.c_str());
}

} // namespace
} // namespace mbusim
