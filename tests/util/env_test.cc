/**
 * @file
 * Unit tests for environment-variable configuration parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hh"

namespace mbusim {
namespace {

TEST(Env, IntFallbackWhenUnset)
{
    unsetenv("MBUSIM_TEST_INT");
    EXPECT_EQ(envInt("MBUSIM_TEST_INT", 42), 42);
}

TEST(Env, IntParsesDecimalAndHex)
{
    setenv("MBUSIM_TEST_INT", "123", 1);
    EXPECT_EQ(envInt("MBUSIM_TEST_INT", 0), 123);
    setenv("MBUSIM_TEST_INT", "0x10", 1);
    EXPECT_EQ(envInt("MBUSIM_TEST_INT", 0), 16);
    setenv("MBUSIM_TEST_INT", "-5", 1);
    EXPECT_EQ(envInt("MBUSIM_TEST_INT", 0), -5);
    unsetenv("MBUSIM_TEST_INT");
}

TEST(Env, EmptyStringUsesFallback)
{
    setenv("MBUSIM_TEST_INT", "", 1);
    EXPECT_EQ(envInt("MBUSIM_TEST_INT", 7), 7);
    unsetenv("MBUSIM_TEST_INT");
}

TEST(Env, UIntFallbackAndParse)
{
    unsetenv("MBUSIM_TEST_UINT");
    EXPECT_EQ(envUInt("MBUSIM_TEST_UINT", 9), 9u);
    setenv("MBUSIM_TEST_UINT", "123", 1);
    EXPECT_EQ(envUInt("MBUSIM_TEST_UINT", 0), 123u);
    setenv("MBUSIM_TEST_UINT", "0", 1);
    EXPECT_EQ(envUInt("MBUSIM_TEST_UINT", 9), 0u);
    unsetenv("MBUSIM_TEST_UINT");
}

TEST(EnvDeathTest, UIntRejectsNegative)
{
    // A negative count must die loudly, not wrap into ~4 billion
    // threads/injections at the use site.
    setenv("MBUSIM_TEST_UINT", "-3", 1);
    EXPECT_EXIT(envUInt("MBUSIM_TEST_UINT", 0),
                testing::ExitedWithCode(1), "must be a non-negative");
    unsetenv("MBUSIM_TEST_UINT");
}

TEST(EnvDeathTest, UIntRejectsOutOfRange)
{
    setenv("MBUSIM_TEST_UINT", "70000", 1);
    EXPECT_EXIT(envUInt("MBUSIM_TEST_UINT", 0, 65535),
                testing::ExitedWithCode(1), "out of range");
    unsetenv("MBUSIM_TEST_UINT");
}

TEST(Env, StringFallbackAndValue)
{
    unsetenv("MBUSIM_TEST_STR");
    EXPECT_EQ(envString("MBUSIM_TEST_STR", "dflt"), "dflt");
    setenv("MBUSIM_TEST_STR", "hello", 1);
    EXPECT_EQ(envString("MBUSIM_TEST_STR", "dflt"), "hello");
    unsetenv("MBUSIM_TEST_STR");
}

TEST(Env, ListSplitsOnCommas)
{
    setenv("MBUSIM_TEST_LIST", "a,b,c", 1);
    auto v = envList("MBUSIM_TEST_LIST");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");
    unsetenv("MBUSIM_TEST_LIST");
}

TEST(Env, ListSkipsEmptySegments)
{
    setenv("MBUSIM_TEST_LIST", ",a,,b,", 1);
    auto v = envList("MBUSIM_TEST_LIST");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    unsetenv("MBUSIM_TEST_LIST");
}

TEST(Env, ListEmptyWhenUnset)
{
    unsetenv("MBUSIM_TEST_LIST");
    EXPECT_TRUE(envList("MBUSIM_TEST_LIST").empty());
}

} // namespace
} // namespace mbusim
