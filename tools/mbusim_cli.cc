/**
 * @file
 * mbusim — the command-line driver.
 *
 * Subcommands:
 *   list                                  registered workloads
 *   asm <file.s>                          assemble, print a hex dump
 *   disasm <file.s|workload>              assemble + disassembly listing
 *   run <file.s|workload> [opts]          run on the timing model
 *   trace <file.s|workload> [opts]        run with a commit trace
 *   campaign <file.s|workload> [opts]     fault-injection campaign
 *   sweep [opts]                          full (workload x component x
 *                                         cardinality) study sweep
 *
 * Common options:
 *   --func                 use the functional reference model (run)
 *   --in-order             in-order issue core
 *   --max-cycles N         cycle budget (default 500M)
 *   --limit N              trace at most N instructions (trace)
 *   --component NAME       l1d l1i l2 regfile itlb dtlb (campaign)
 *   --faults N             fault cardinality 1..3 (campaign)
 *   --injections N         sample size (campaign)
 *   --cluster RxC          cluster shape (campaign, default 3x3)
 *   --seed N               campaign seed
 *   --journal-dir DIR      durable run journal; an interrupted
 *                          campaign resumes from it (campaign, sweep)
 *   --deadline N           wall-clock budget in seconds (campaign, sweep)
 *   --cache-dir DIR        on-disk result cache (sweep)
 *   --serial               disable the sweep scheduler: run one
 *                          campaign at a time (sweep)
 *
 * sweep honours the MBUSIM_* environment knobs (MBUSIM_WORKLOADS
 * restricts the grid, MBUSIM_SWEEP_SCHEDULER=0 is --serial, ...);
 * explicit flags win over the environment.
 *
 * Program arguments may name a registered workload ("CRC32") or a path
 * to an assembly file.
 *
 * Exit codes: 0 success, 1 failure, 2 usage error, 124 campaign
 * deadline expired, 130 interrupted by SIGINT (in-flight runs finish
 * and the journal is flushed first in both cases).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/sampling.hh"
#include "core/study.hh"
#include "sim/assembler.hh"
#include "sim/funcsim.hh"
#include "sim/simulator.hh"
#include "util/interrupt.hh"
#include "util/log.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace mbusim;

namespace {

/** Distinct exit codes for the two graceful-cancellation paths. */
constexpr int ExitDeadline = 124;     // cf. coreutils timeout(1)
constexpr int ExitInterrupted = 130;  // 128 + SIGINT

struct Options
{
    std::string program;            ///< workload name or file path
    bool functional = false;
    bool inOrder = false;
    uint64_t maxCycles = 500'000'000;
    uint64_t limit = 200;
    core::Component component = core::Component::L1D;
    uint32_t faults = 1;
    uint32_t injections = 200;
    uint64_t seed = 0x5eed;
    core::ClusterShape cluster;
    std::string journalDir;
    uint32_t deadlineSeconds = 0;
    std::string cacheDir;
    bool serial = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mbusim <list|asm|disasm|run|trace|campaign|"
                 "sweep> [program] [options]\n"
                 "run 'head -55 tools/mbusim_cli.cc' for the option "
                 "list\n");
    std::exit(2);
}

Options
parseOptions(int argc, char** argv, int first)
{
    Options opts;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--func") {
            opts.functional = true;
        } else if (arg == "--in-order") {
            opts.inOrder = true;
        } else if (arg == "--max-cycles") {
            opts.maxCycles = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--limit") {
            opts.limit = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--component") {
            opts.component = core::componentFromShortName(next());
        } else if (arg == "--faults") {
            opts.faults = static_cast<uint32_t>(std::atoi(next()));
        } else if (arg == "--injections") {
            opts.injections = static_cast<uint32_t>(std::atoi(next()));
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--journal-dir") {
            opts.journalDir = next();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--serial") {
            opts.serial = true;
        } else if (arg == "--deadline") {
            opts.deadlineSeconds =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--cluster") {
            const char* v = next();
            unsigned r = 0, c = 0;
            if (std::sscanf(v, "%ux%u", &r, &c) != 2 || !r || !c)
                fatal("bad --cluster '%s' (expected e.g. 3x3)", v);
            opts.cluster = {r, c};
        } else if (!arg.empty() && arg[0] != '-' &&
                   opts.program.empty()) {
            opts.program = arg;
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    return opts;
}

/** Load a program: registered workload name first, then file path. */
sim::Program
loadProgram(const std::string& name)
{
    for (const auto& w : workloads::allWorkloads()) {
        if (w.name == name)
            return w.assemble();
    }
    std::ifstream in(name);
    if (!in)
        fatal("'%s' is neither a workload nor a readable file",
              name.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    try {
        return sim::assemble(ss.str());
    } catch (const sim::AsmError& e) {
        fatal("%s: %s", name.c_str(), e.what());
    }
}

int
cmdList()
{
    TextTable table({"Workload", "Description", "Paper cycles"});
    for (const auto& w : workloads::allWorkloads())
        table.addRow({w.name, w.description, fmtGrouped(w.paperCycles)});
    table.print();
    return 0;
}

int
cmdAsm(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    std::printf("code base 0x%08x, %zu instructions; data base 0x%08x, "
                "%zu bytes; entry 0x%08x\n",
                p.codeBase, p.code.size(), p.dataBase, p.data.size(),
                p.entry);
    for (size_t i = 0; i < p.code.size(); ++i) {
        if (i % 4 == 0)
            std::printf("%08x:", p.codeBase +
                                 static_cast<uint32_t>(i) * 4);
        std::printf(" %08x", p.code[i]);
        if (i % 4 == 3 || i + 1 == p.code.size())
            std::printf("\n");
    }
    return 0;
}

int
cmdDisasm(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    // Reverse symbol map for labels.
    for (size_t i = 0; i < p.code.size(); ++i) {
        uint32_t addr = p.codeBase + static_cast<uint32_t>(i) * 4;
        for (const auto& [name, value] : p.symbols) {
            if (value == addr)
                std::printf("%s:\n", name.c_str());
        }
        std::printf("  %08x:  %08x  %s\n", addr, p.code[i],
                    sim::disassemble(sim::decode(p.code[i])).c_str());
    }
    return 0;
}

void
printOutput(const std::vector<uint8_t>& output)
{
    std::printf("output (%zu bytes):", output.size());
    for (size_t i = 0; i < output.size(); ++i) {
        if (i % 16 == 0)
            std::printf("\n  ");
        std::printf("%02x ", output[i]);
    }
    std::printf("\n");
}

int
cmdRun(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    if (opts.functional) {
        sim::FuncSim fs(p);
        sim::FuncResult r = fs.run(opts.maxCycles);
        std::printf("functional: %s after %llu instructions\n",
                    r.status.describe().c_str(),
                    static_cast<unsigned long long>(r.instructions));
        printOutput(r.output);
        return r.status.exitedCleanly() ? 0 : 1;
    }
    sim::CpuConfig config;
    config.inOrderIssue = opts.inOrder;
    sim::Simulator simulator(p, config);
    sim::SimResult r = simulator.run(opts.maxCycles);
    std::printf("%s core: %s\n", opts.inOrder ? "in-order" : "OoO",
                r.status.describe().c_str());
    std::printf("cycles %llu, instructions %llu (IPC %.2f), branches "
                "%llu (%llu mispredicted), loads %llu, stores %llu\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               static_cast<double>(r.cycles)
                         : 0.0,
                static_cast<unsigned long long>(r.cpuStats.branches),
                static_cast<unsigned long long>(r.cpuStats.mispredicts),
                static_cast<unsigned long long>(r.cpuStats.loads),
                static_cast<unsigned long long>(r.cpuStats.stores));
    printOutput(r.output);
    return r.status.exitedCleanly() ? 0 : 1;
}

int
cmdTrace(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    sim::CpuConfig config;
    config.inOrderIssue = opts.inOrder;
    sim::Simulator simulator(p, config);
    uint64_t printed = 0;
    simulator.cpu().setCommitHook(
        [&](uint64_t cycle, uint32_t pc, const sim::DecodedInst& di) {
            if (printed++ < opts.limit) {
                std::printf("%8llu  %08x  %s\n",
                            static_cast<unsigned long long>(cycle), pc,
                            sim::disassemble(di).c_str());
            }
        });
    sim::SimResult r = simulator.run(opts.maxCycles);
    if (printed > opts.limit)
        std::printf("... (%llu more instructions)\n",
                    static_cast<unsigned long long>(printed -
                                                    opts.limit));
    std::printf("%s\n", r.status.describe().c_str());
    return 0;
}

int
cmdCampaign(const Options& opts)
{
    // Campaigns need a Workload; wrap ad-hoc files on the fly.
    static std::string file_source;
    const workloads::Workload* workload = nullptr;
    for (const auto& w : workloads::allWorkloads()) {
        if (w.name == opts.program)
            workload = &w;
    }
    static workloads::Workload adhoc;
    if (!workload) {
        std::ifstream in(opts.program);
        if (!in)
            fatal("'%s' is neither a workload nor a readable file",
                  opts.program.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        file_source = ss.str();
        adhoc = {opts.program, "ad-hoc program", file_source.c_str(), 0};
        workload = &adhoc;
    }

    core::CampaignConfig config;
    config.component = opts.component;
    config.faults = opts.faults;
    config.injections = opts.injections;
    config.seed = opts.seed;
    config.cluster = opts.cluster;
    config.cpu.inOrderIssue = opts.inOrder;
    config.journalDir = opts.journalDir;
    config.deadlineSeconds = opts.deadlineSeconds;

    // ^C finishes in-flight runs, flushes the journal and reports the
    // partial tally instead of dropping completed work on the floor.
    installSigintHandler();

    core::Campaign campaign(*workload, config);
    core::CampaignResult result = campaign.run();

    std::printf("campaign: %s, %s, %u-bit faults, %u injections "
                "(+/-%.1f%% @99%%)\n",
                workload->name.c_str(),
                core::componentName(opts.component), opts.faults,
                opts.injections,
                core::errorMargin(1e12, opts.injections) * 100.0);
    std::printf("golden: %llu cycles\n",
                static_cast<unsigned long long>(result.goldenCycles));
    if (result.resumed > 0)
        std::printf("resumed: %u runs from the journal\n",
                    result.resumed);
    if (result.cancelled) {
        std::printf("cancelled: %u/%u runs completed%s\n",
                    result.completed, opts.injections,
                    opts.journalDir.empty()
                        ? "" : " (journalled; rerun to resume)");
    }
    for (core::Outcome o : core::AllOutcomes) {
        std::printf("  %-8s %6.2f%%  (%llu)\n", core::outcomeName(o),
                    result.counts.fraction(o) * 100.0,
                    static_cast<unsigned long long>(
                        result.counts.count(o)));
    }
    std::printf("  AVF     %6.2f%%\n", result.avf() * 100.0);
    if (result.cancelled)
        return interruptRequested() ? ExitInterrupted : ExitDeadline;
    return 0;
}

int
cmdSweep(const Options& opts)
{
    // Environment knobs form the baseline; explicit flags win. A flag
    // left at its built-in default is indistinguishable from "absent"
    // and so lets the MBUSIM_* value through.
    const Options defaults;
    core::StudyConfig config = core::defaultStudyConfig();
    if (opts.injections != defaults.injections)
        config.injections = opts.injections;
    if (opts.seed != defaults.seed)
        config.seed = opts.seed;
    config.cluster = opts.cluster;
    config.cpu.inOrderIssue = opts.inOrder;
    if (!opts.journalDir.empty())
        config.journalDir = opts.journalDir;
    if (!opts.cacheDir.empty())
        config.cacheDir = opts.cacheDir;
    config.deadlineSeconds = opts.deadlineSeconds;
    if (opts.serial)
        config.sweepScheduler = false;

    installSigintHandler();

    core::Study study(config);
    core::SweepReport report = study.runSweep(
        [](const core::SweepProgress& p) {
            std::fprintf(stderr, "[%u/%u] %s%s\n", p.cellsDone,
                         p.cellsTotal, p.cell.c_str(),
                         p.fromCache ? " (cached)" : "");
        });

    std::printf("sweep: %u cells (%zu workloads x %zu components x 3 "
                "cardinalities), %u injections each\n",
                report.cells, study.workloadSet().size(),
                core::AllComponents.size(), config.injections);
    std::printf("  cached %u, simulated %u cells; %llu runs simulated, "
                "%llu resumed from journals\n",
                report.cachedCells, report.simulatedCells,
                static_cast<unsigned long long>(report.runsSimulated),
                static_cast<unsigned long long>(report.runsResumed));
    std::printf("  golden simulations: %llu (shared store: at most one "
                "per workload)\n",
                static_cast<unsigned long long>(
                    report.goldenSimulations));
    if (report.cancelled) {
        std::printf("cancelled: %u/%u cells completed%s\n",
                    report.cachedCells + report.simulatedCells,
                    report.cells,
                    config.journalDir.empty()
                        ? "" : " (journalled; rerun to resume)");
        return interruptRequested() ? ExitInterrupted : ExitDeadline;
    }

    // Every cell is now memoized, so this table costs no simulation.
    TextTable table({"Component", "AVF 1-bit", "AVF 2-bit", "AVF 3-bit"});
    for (core::Component c : core::AllComponents) {
        core::ComponentAvf avf = study.componentAvf(c);
        table.addRow({core::componentName(c),
                      strprintf("%.2f%%", avf.byCardinality[0] * 100.0),
                      strprintf("%.2f%%", avf.byCardinality[1] * 100.0),
                      strprintf("%.2f%%", avf.byCardinality[2] * 100.0)});
    }
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    Options opts = parseOptions(argc, argv, 2);
    if (cmd == "sweep")
        return cmdSweep(opts);
    if (opts.program.empty())
        usage();
    if (cmd == "asm")
        return cmdAsm(opts);
    if (cmd == "disasm")
        return cmdDisasm(opts);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "trace")
        return cmdTrace(opts);
    if (cmd == "campaign")
        return cmdCampaign(opts);
    usage();
}
