/**
 * @file
 * mbusim — the command-line driver.
 *
 * Subcommands:
 *   list                                  registered workloads
 *   asm <file.s>                          assemble, print a hex dump
 *   disasm <file.s|workload>              assemble + disassembly listing
 *   run <file.s|workload> [opts]          run on the timing model
 *   trace <file.s|workload> [opts]        run with a commit trace
 *   campaign <file.s|workload> [opts]     fault-injection campaign
 *   sweep [opts]                          full (workload x component x
 *                                         cardinality) study sweep
 *   report [opts]                         export the weighted-AVF / FIT
 *                                         tables (sweeps uncached cells)
 *   worker [opts]                         sweep worker process: spawned
 *                                         by `sweep --worker-procs N`,
 *                                         or started by hand on a
 *                                         remote host with --listen
 *                                         PORT / --connect HOST:PORT
 *                                         (trusted networks only)
 *
 * Common options:
 *   --func                 use the functional reference model (run)
 *   --in-order             in-order issue core
 *   --max-cycles N         cycle budget (default 500M)
 *   --limit N              trace at most N instructions (trace)
 *   --component NAME       l1d l1i l2 regfile itlb dtlb (campaign)
 *   --faults N             fault cardinality 1..3 (campaign)
 *   --injections N         sample size (campaign)
 *   --cluster RxC          cluster shape (campaign, default 3x3)
 *   --seed N               campaign seed
 *   --journal-dir DIR      durable run journal; an interrupted
 *                          campaign resumes from it (campaign, sweep)
 *   --deadline N           wall-clock budget in seconds (campaign, sweep)
 *   --cache-dir DIR        on-disk result cache (sweep, report)
 *   --serial               disable the sweep scheduler: run one
 *                          campaign at a time (sweep)
 *   --worker-procs N       run the sweep through N crash-isolated
 *                          worker subprocesses (sweep; 0 = in-process;
 *                          incompatible with --serial). See
 *                          DESIGN.md §14 for the lease/respawn knobs
 *                          MBUSIM_LEASE_TIMEOUT_S and
 *                          MBUSIM_RESPAWN_BUDGET.
 *   --hosts LIST           also dial remote workers, comma-separated
 *                          host:port entries, each running `mbusim
 *                          worker --listen PORT` (sweep; DESIGN.md
 *                          §17; trusted networks only)
 *   --listen PORT          accept dial-in remote workers (`mbusim
 *                          worker --connect HOST:PORT`) on PORT, 0 =
 *                          ephemeral (sweep)
 *   --trace-out FILE       JSONL run trace: one record per injected
 *                          run (campaign, sweep)
 *   --report-out FILE      result tables; ".json" selects JSON, "-"
 *                          streams CSV to stdout (campaign, sweep,
 *                          report)
 *
 * sweep honours the MBUSIM_* environment knobs (MBUSIM_WORKLOADS
 * restricts the grid, MBUSIM_SWEEP_SCHEDULER=0 is --serial,
 * MBUSIM_WORKER_PROCS is --worker-procs, ...); explicit flags win
 * over the environment.
 *
 * Program arguments may name a registered workload ("CRC32") or a path
 * to an assembly file.
 *
 * Exit codes: 0 success, 1 runtime failure, 2 usage error (unknown
 * option or subcommand, malformed or out-of-range value, missing
 * operand), 124 campaign deadline expired, 130 interrupted by SIGINT
 * or SIGTERM (in-flight runs finish and the journal is flushed first
 * in both cases). Numeric options are parsed strictly: non-numeric
 * input, trailing garbage ("5k") and values outside the documented
 * range are usage errors, never silently clamped or wrapped.
 */

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/report.hh"
#include "core/sampling.hh"
#include "core/study.hh"
#include "dist/coordinator.hh"
#include "dist/transport.hh"
#include "dist/worker.hh"
#include "sim/assembler.hh"
#include "sim/funcsim.hh"
#include "sim/simulator.hh"
#include "util/interrupt.hh"
#include "util/log.hh"
#include "util/metrics.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace mbusim;

namespace {

/** Distinct exit codes for the two graceful-cancellation paths. */
constexpr int ExitDeadline = 124;     // cf. coreutils timeout(1)
constexpr int ExitInterrupted = 130;  // 128 + SIGINT

struct Options
{
    std::string program;            ///< workload name or file path
    bool functional = false;
    bool inOrder = false;
    uint64_t maxCycles = 500'000'000;
    uint64_t limit = 200;
    core::Component component = core::Component::L1D;
    uint32_t faults = 1;
    uint32_t injections = 200;
    uint64_t seed = 0x5eed;
    core::ClusterShape cluster;
    std::string journalDir;
    uint32_t deadlineSeconds = 0;
    std::string cacheDir;
    bool serial = false;
    /** UINT32_MAX = flag absent (defer to MBUSIM_WORKER_PROCS); an
     *  explicit 0 forces the in-process scheduler. */
    uint32_t workerProcs = UINT32_MAX;
    /** --hosts: remote workers to dial, host:port each. Empty = flag
     *  absent (defer to MBUSIM_HOSTS). */
    std::vector<std::string> hosts;
    bool hostsGiven = false;
    /** --listen: accept dial-in workers (-1 = no listen socket). */
    int listenPort = -1;
    std::string traceOut;
    std::string reportOut;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mbusim <list|asm|disasm|run|trace|campaign|"
                 "sweep|report> [program] [options]\n"
                 "run 'head -75 tools/mbusim_cli.cc' for the option "
                 "list\n");
    std::exit(2);
}

/**
 * A usage error (the documented exit code 2): one line to stderr, then
 * out. Distinct from fatal(), which reports runtime failures and exits
 * 1 — a bad flag must be distinguishable from a failed simulation in
 * scripts.
 */
[[noreturn]] void
usageError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

void
usageError(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "mbusim: usage error: %s\n", msg.c_str());
    std::exit(2);
}

/**
 * Strict unsigned parse for option values (base 10, or 0x-prefixed
 * hex). Rejects empty input, signs, non-numeric text, trailing garbage
 * ("5k") and anything outside [minv, maxv] with a usage error — atoi's
 * silent 0s and strtoul's negative wraparound were real footguns
 * (`--faults abc` ran a 0-fault campaign; `--faults -1` asked for
 * 4294967295 faults).
 */
uint64_t
parseUInt(const char* opt, const char* text, uint64_t minv,
          uint64_t maxv)
{
    const char* p = text;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '\0' || *p == '-' || *p == '+' ||
        !std::isdigit(static_cast<unsigned char>(*p))) {
        usageError("option %s: expected an unsigned integer, got '%s'",
                   opt, text);
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long value = std::strtoull(p, &end, 0);
    if (end == p || *end != '\0')
        usageError("option %s: trailing garbage in '%s'", opt, text);
    if (errno == ERANGE || value < minv || value > maxv) {
        usageError("option %s: value '%s' out of range [%llu, %llu]",
                   opt, text, static_cast<unsigned long long>(minv),
                   static_cast<unsigned long long>(maxv));
    }
    return value;
}

/** Parse a component short name; usage error (not fatal) if unknown. */
core::Component
parseComponent(const char* text)
{
    for (core::Component c : core::AllComponents) {
        if (std::strcmp(core::componentShortName(c), text) == 0)
            return c;
    }
    usageError("option --component: unknown component '%s' (expected "
               "l1d, l1i, l2, regfile, itlb or dtlb)",
               text);
}

/** Parse a RxC cluster shape with strictly checked dimensions. */
core::ClusterShape
parseCluster(const char* text)
{
    const std::string s = text;
    size_t x = s.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= s.size()) {
        usageError("option --cluster: expected RxC (e.g. 3x3), "
                   "got '%s'", text);
    }
    // 4096 bounds the cluster well above any studied geometry while
    // keeping rows*cols far from uint32 overflow.
    core::ClusterShape shape;
    shape.rows = static_cast<uint32_t>(
        parseUInt("--cluster", s.substr(0, x).c_str(), 1, 4096));
    shape.cols = static_cast<uint32_t>(
        parseUInt("--cluster", s.substr(x + 1).c_str(), 1, 4096));
    return shape;
}

Options
parseOptions(int argc, char** argv, int first)
{
    Options opts;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                usageError("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--func") {
            opts.functional = true;
        } else if (arg == "--in-order") {
            opts.inOrder = true;
        } else if (arg == "--max-cycles") {
            opts.maxCycles = parseUInt("--max-cycles", next(), 1,
                                       UINT64_MAX);
        } else if (arg == "--limit") {
            opts.limit = parseUInt("--limit", next(), 0, UINT64_MAX);
        } else if (arg == "--component") {
            opts.component = parseComponent(next());
        } else if (arg == "--faults") {
            // Validated here, not deep inside MbuRates::forCardinality
            // or the mask generator mid-campaign.
            opts.faults = static_cast<uint32_t>(
                parseUInt("--faults", next(), 1, 3));
        } else if (arg == "--injections") {
            opts.injections = static_cast<uint32_t>(
                parseUInt("--injections", next(), 1, UINT32_MAX));
        } else if (arg == "--seed") {
            opts.seed = parseUInt("--seed", next(), 0, UINT64_MAX);
        } else if (arg == "--journal-dir") {
            opts.journalDir = next();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--serial") {
            opts.serial = true;
        } else if (arg == "--worker-procs") {
            opts.workerProcs = static_cast<uint32_t>(
                parseUInt("--worker-procs", next(), 0, 4096));
        } else if (arg == "--hosts") {
            // Validated here so a typo'd host:port is a usage error,
            // not a silently skipped worker mid-sweep.
            opts.hostsGiven = true;
            opts.hosts = dist::splitCommaList(next());
            for (const std::string& spec : opts.hosts) {
                dist::HostSpec host;
                if (!dist::parseHostPort(spec, host)) {
                    usageError("option --hosts: malformed entry '%s' "
                               "(expected host:port, port 1-65535)",
                               spec.c_str());
                }
            }
        } else if (arg == "--listen") {
            opts.listenPort = static_cast<int>(
                parseUInt("--listen", next(), 0, 65535));
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
        } else if (arg == "--report-out") {
            opts.reportOut = next();
        } else if (arg == "--deadline") {
            opts.deadlineSeconds = static_cast<uint32_t>(
                parseUInt("--deadline", next(), 0, UINT32_MAX));
        } else if (arg == "--cluster") {
            opts.cluster = parseCluster(next());
        } else if (!arg.empty() && arg[0] != '-' &&
                   opts.program.empty()) {
            opts.program = arg;
        } else {
            usageError("unknown option '%s'", arg.c_str());
        }
    }
    // Cross-option feasibility, checked at parse time so an infeasible
    // campaign fails before any simulation: N faults need a cluster
    // with at least N cells to land in.
    if (opts.faults >
        static_cast<uint64_t>(opts.cluster.rows) * opts.cluster.cols) {
        usageError("cannot place %u faults in a %ux%u cluster "
                   "(--faults must be <= rows*cols of --cluster)",
                   opts.faults, opts.cluster.rows, opts.cluster.cols);
    }
    // --serial means "one campaign at a time in this process"; a
    // worker fleet contradicts it rather than refining it.
    if (opts.serial && opts.workerProcs != UINT32_MAX &&
        opts.workerProcs > 0) {
        usageError("--worker-procs is incompatible with --serial "
                   "(pick one execution mode)");
    }
    if (opts.serial && (opts.hostsGiven || opts.listenPort >= 0)) {
        usageError("--hosts/--listen are incompatible with --serial "
                   "(pick one execution mode)");
    }
    return opts;
}

/** Load a program: registered workload name first, then file path. */
sim::Program
loadProgram(const std::string& name)
{
    for (const auto& w : workloads::allWorkloads()) {
        if (w.name == name)
            return w.assemble();
    }
    std::ifstream in(name);
    if (!in)
        fatal("'%s' is neither a workload nor a readable file",
              name.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    try {
        return sim::assemble(ss.str());
    } catch (const sim::AsmError& e) {
        fatal("%s: %s", name.c_str(), e.what());
    }
}

int
cmdList()
{
    TextTable table({"Workload", "Description", "Paper cycles"});
    for (const auto& w : workloads::allWorkloads())
        table.addRow({w.name, w.description, fmtGrouped(w.paperCycles)});
    table.print();
    return 0;
}

int
cmdAsm(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    std::printf("code base 0x%08x, %zu instructions; data base 0x%08x, "
                "%zu bytes; entry 0x%08x\n",
                p.codeBase, p.code.size(), p.dataBase, p.data.size(),
                p.entry);
    for (size_t i = 0; i < p.code.size(); ++i) {
        if (i % 4 == 0)
            std::printf("%08x:", p.codeBase +
                                 static_cast<uint32_t>(i) * 4);
        std::printf(" %08x", p.code[i]);
        if (i % 4 == 3 || i + 1 == p.code.size())
            std::printf("\n");
    }
    return 0;
}

int
cmdDisasm(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    // Reverse symbol map for labels.
    for (size_t i = 0; i < p.code.size(); ++i) {
        uint32_t addr = p.codeBase + static_cast<uint32_t>(i) * 4;
        for (const auto& [name, value] : p.symbols) {
            if (value == addr)
                std::printf("%s:\n", name.c_str());
        }
        std::printf("  %08x:  %08x  %s\n", addr, p.code[i],
                    sim::disassemble(sim::decode(p.code[i])).c_str());
    }
    return 0;
}

void
printOutput(const std::vector<uint8_t>& output)
{
    std::printf("output (%zu bytes):", output.size());
    for (size_t i = 0; i < output.size(); ++i) {
        if (i % 16 == 0)
            std::printf("\n  ");
        std::printf("%02x ", output[i]);
    }
    std::printf("\n");
}

int
cmdRun(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    if (opts.functional) {
        sim::FuncSim fs(p);
        sim::FuncResult r = fs.run(opts.maxCycles);
        std::printf("functional: %s after %llu instructions\n",
                    r.status.describe().c_str(),
                    static_cast<unsigned long long>(r.instructions));
        printOutput(r.output);
        return r.status.exitedCleanly() ? 0 : 1;
    }
    sim::CpuConfig config;
    config.inOrderIssue = opts.inOrder;
    sim::Simulator simulator(p, config);
    sim::SimResult r = simulator.run(opts.maxCycles);
    std::printf("%s core: %s\n", opts.inOrder ? "in-order" : "OoO",
                r.status.describe().c_str());
    std::printf("cycles %llu, instructions %llu (IPC %.2f), branches "
                "%llu (%llu mispredicted), loads %llu, stores %llu\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               static_cast<double>(r.cycles)
                         : 0.0,
                static_cast<unsigned long long>(r.cpuStats.branches),
                static_cast<unsigned long long>(r.cpuStats.mispredicts),
                static_cast<unsigned long long>(r.cpuStats.loads),
                static_cast<unsigned long long>(r.cpuStats.stores));
    printOutput(r.output);
    return r.status.exitedCleanly() ? 0 : 1;
}

int
cmdTrace(const Options& opts)
{
    sim::Program p = loadProgram(opts.program);
    sim::CpuConfig config;
    config.inOrderIssue = opts.inOrder;
    sim::Simulator simulator(p, config);
    uint64_t printed = 0;
    simulator.cpu().setCommitHook(
        [&](uint64_t cycle, uint32_t pc, const sim::DecodedInst& di) {
            if (printed++ < opts.limit) {
                std::printf("%8llu  %08x  %s\n",
                            static_cast<unsigned long long>(cycle), pc,
                            sim::disassemble(di).c_str());
            }
        });
    sim::SimResult r = simulator.run(opts.maxCycles);
    if (printed > opts.limit)
        std::printf("... (%llu more instructions)\n",
                    static_cast<unsigned long long>(printed -
                                                    opts.limit));
    std::printf("%s\n", r.status.describe().c_str());
    return 0;
}

int
cmdCampaign(const Options& opts)
{
    // Campaigns need a Workload; wrap ad-hoc files on the fly.
    static std::string file_source;
    const workloads::Workload* workload = nullptr;
    for (const auto& w : workloads::allWorkloads()) {
        if (w.name == opts.program)
            workload = &w;
    }
    static workloads::Workload adhoc;
    if (!workload) {
        std::ifstream in(opts.program);
        if (!in)
            fatal("'%s' is neither a workload nor a readable file",
                  opts.program.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        file_source = ss.str();
        adhoc = {opts.program, "ad-hoc program", file_source.c_str(), 0};
        workload = &adhoc;
    }

    core::CampaignConfig config;
    config.component = opts.component;
    config.faults = opts.faults;
    config.injections = opts.injections;
    config.seed = opts.seed;
    config.cluster = opts.cluster;
    config.cpu.inOrderIssue = opts.inOrder;
    config.journalDir = opts.journalDir;
    config.deadlineSeconds = opts.deadlineSeconds;
    if (!opts.traceOut.empty())
        config.trace = std::make_shared<JsonlWriter>(opts.traceOut);

    // ^C or SIGTERM finishes in-flight runs, flushes the journal and
    // reports the partial tally instead of dropping completed work on
    // the floor.
    installTerminationHandlers();

    core::Campaign campaign(*workload, config);
    core::CampaignResult result = campaign.run();
    if (config.trace)
        config.trace->close();
    if (!opts.reportOut.empty()) {
        core::writeReport(
            core::campaignReportRows(result, config, workload->name),
            core::campaignReportJson(result, config, workload->name),
            opts.reportOut);
    }

    std::printf("campaign: %s, %s, %u-bit faults, %u injections "
                "(+/-%.1f%% @99%%)\n",
                workload->name.c_str(),
                core::componentName(opts.component), opts.faults,
                opts.injections,
                core::errorMargin(1e12, opts.injections) * 100.0);
    std::printf("golden: %llu cycles\n",
                static_cast<unsigned long long>(result.goldenCycles));
    if (result.resumed > 0)
        std::printf("resumed: %u runs from the journal\n",
                    result.resumed);
    if (result.cancelled) {
        std::printf("cancelled: %u/%u runs completed%s\n",
                    result.completed, opts.injections,
                    opts.journalDir.empty()
                        ? "" : " (journalled; rerun to resume)");
    }
    for (core::Outcome o : core::AllOutcomes) {
        std::printf("  %-8s %6.2f%%  (%llu)\n", core::outcomeName(o),
                    result.counts.fraction(o) * 100.0,
                    static_cast<unsigned long long>(
                        result.counts.count(o)));
    }
    std::printf("  AVF     %6.2f%%\n", result.avf() * 100.0);
    if (result.cancelled)
        return interruptRequested() ? ExitInterrupted : ExitDeadline;
    return 0;
}

int
cmdSweep(const Options& opts)
{
    // Environment knobs form the baseline; explicit flags win. A flag
    // left at its built-in default is indistinguishable from "absent"
    // and so lets the MBUSIM_* value through.
    const Options defaults;
    core::StudyConfig config = core::defaultStudyConfig();
    if (opts.injections != defaults.injections)
        config.injections = opts.injections;
    if (opts.seed != defaults.seed)
        config.seed = opts.seed;
    config.cluster = opts.cluster;
    config.cpu.inOrderIssue = opts.inOrder;
    if (!opts.journalDir.empty())
        config.journalDir = opts.journalDir;
    if (!opts.cacheDir.empty())
        config.cacheDir = opts.cacheDir;
    config.deadlineSeconds = opts.deadlineSeconds;
    if (opts.serial)
        config.sweepScheduler = false;
    if (!opts.traceOut.empty())
        config.trace = std::make_shared<JsonlWriter>(opts.traceOut);

    // SIGTERM (the batch scheduler's goodbye) gets the same graceful
    // drain as ^C: finish in-flight runs, flush journals, exit 130.
    installTerminationHandlers();

    dist::DistConfig dist_config = dist::defaultDistConfig();
    if (opts.workerProcs != UINT32_MAX)
        dist_config.workerProcs = opts.workerProcs;
    if (opts.hostsGiven)
        dist_config.hosts = opts.hosts;
    dist_config.listenPort = opts.listenPort;
    if (opts.serial) {
        dist_config.workerProcs = 0;
        dist_config.hosts.clear();
        dist_config.listenPort = -1;
    }

    core::Study study(config);
    // workerProcs == 0 falls straight through to Study::runSweep.
    core::SweepReport report = dist::runDistributedSweep(
        study, dist_config, [](const core::SweepProgress& p) {
            std::fprintf(stderr, "[%u/%u] %s%s\n", p.cellsDone,
                         p.cellsTotal, p.cell.c_str(),
                         p.fromCache ? " (cached)" : "");
        });

    std::printf("sweep: %u cells (%zu workloads x %zu components x 3 "
                "cardinalities), %u injections each\n",
                report.cells, study.workloadSet().size(),
                core::AllComponents.size(), config.injections);
    std::printf("  cached %u, simulated %u cells; %llu runs simulated, "
                "%llu resumed from journals\n",
                report.cachedCells, report.simulatedCells,
                static_cast<unsigned long long>(report.runsSimulated),
                static_cast<unsigned long long>(report.runsResumed));
    std::printf("  golden simulations: %llu (shared store: at most one "
                "per workload)\n",
                static_cast<unsigned long long>(
                    report.goldenSimulations));
    if (config.trace)
        config.trace->close();
    if (report.cancelled) {
        std::printf("cancelled: %u/%u cells completed%s\n",
                    report.cachedCells + report.simulatedCells,
                    report.cells,
                    config.journalDir.empty()
                        ? "" : " (journalled; rerun to resume)");
        return interruptRequested() ? ExitInterrupted : ExitDeadline;
    }

    // Every cell is now memoized, so this table costs no simulation.
    TextTable table({"Component", "AVF 1-bit", "AVF 2-bit", "AVF 3-bit"});
    for (core::Component c : core::AllComponents) {
        core::ComponentAvf avf = study.componentAvf(c);
        table.addRow({core::componentName(c),
                      strprintf("%.2f%%", avf.byCardinality[0] * 100.0),
                      strprintf("%.2f%%", avf.byCardinality[1] * 100.0),
                      strprintf("%.2f%%", avf.byCardinality[2] * 100.0)});
    }
    table.print();
    if (!opts.reportOut.empty()) {
        core::StudyReport study_report = core::buildStudyReport(study);
        core::writeReport(core::studyReportRows(study_report),
                          core::studyReportJson(study_report),
                          opts.reportOut);
    }
    return 0;
}

/**
 * Export the paper's quantitative tables. Shares the sweep's study
 * machinery: cells already memoized in --cache-dir cost no simulation;
 * anything missing is swept first.
 */
int
cmdReport(const Options& opts)
{
    const Options defaults;
    core::StudyConfig config = core::defaultStudyConfig();
    if (opts.injections != defaults.injections)
        config.injections = opts.injections;
    if (opts.seed != defaults.seed)
        config.seed = opts.seed;
    config.cluster = opts.cluster;
    config.cpu.inOrderIssue = opts.inOrder;
    if (!opts.journalDir.empty())
        config.journalDir = opts.journalDir;
    if (!opts.cacheDir.empty())
        config.cacheDir = opts.cacheDir;
    if (opts.serial)
        config.sweepScheduler = false;
    if (!opts.traceOut.empty())
        config.trace = std::make_shared<JsonlWriter>(opts.traceOut);

    installTerminationHandlers();

    core::Study study(config);
    core::StudyReport report = core::buildStudyReport(study);
    if (config.trace)
        config.trace->close();
    core::writeReport(core::studyReportRows(report),
                      core::studyReportJson(report),
                      opts.reportOut.empty() ? "-" : opts.reportOut);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    // The worker protocol has its own strict argv contract (it is
    // built by the coordinator, not typed by a person), so it skips
    // the interactive option parser entirely.
    if (cmd == "worker") {
        return dist::workerMain(
            std::vector<std::string>(argv + 2, argv + argc));
    }
    Options opts = parseOptions(argc, argv, 2);
    if (cmd == "sweep")
        return cmdSweep(opts);
    if (cmd == "report")
        return cmdReport(opts);
    if (opts.program.empty())
        usage();
    if (cmd == "asm")
        return cmdAsm(opts);
    if (cmd == "disasm")
        return cmdDisasm(opts);
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "trace")
        return cmdTrace(opts);
    if (cmd == "campaign")
        return cmdCampaign(opts);
    usage();
}
